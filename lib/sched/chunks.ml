module Im = Loopcoal_util.Intmath

let check ~n ~p =
  if n < 0 then invalid_arg "Chunks: n must be >= 0";
  if p < 1 then invalid_arg "Chunks: p must be >= 1"

let self_sched_sizes ~n ~c =
  let rec go remaining acc =
    if remaining = 0 then List.rev acc
    else
      let take = min c remaining in
      go (remaining - take) (take :: acc)
  in
  go n []

let dynamic_sizes policy ~n ~p =
  check ~n ~p;
  match (policy : Policy.t) with
  | Static_block | Static_cyclic -> None
  | Self_sched c -> Some (self_sched_sizes ~n ~c)
  | Gss -> Some (Gss.chunk_sizes ~n ~p)
  | Factoring -> Some (Factoring.chunk_sizes ~n ~p)
  | Trapezoid -> Some (Trapezoid.chunk_sizes ~n ~p)

let sequence_of_sizes sizes =
  let arr = Array.make (List.length sizes) (0, 0) in
  let t0 = ref 1 in
  List.iteri
    (fun k len ->
      arr.(k) <- (!t0, len);
      t0 := !t0 + len)
    sizes;
  arr

let dynamic_sequence policy ~n ~p =
  Option.map sequence_of_sizes (dynamic_sizes policy ~n ~p)

let count policy ~n ~p =
  check ~n ~p;
  match (policy : Policy.t) with
  | Static_block -> min p n
  | Static_cyclic ->
      (* Contiguous runs of cyclic ownership: singletons when p > 1, one
         whole-range run per (single) processor otherwise. *)
      if n = 0 then 0 else if p = 1 then 1 else n
  | Self_sched c -> Im.cdiv n c
  | Gss -> Gss.dispatch_count ~n ~p
  | Factoring -> Factoring.dispatch_count ~n ~p
  | Trapezoid -> Trapezoid.dispatch_count ~n ~p

let sync_ops policy ~n ~p =
  check ~n ~p;
  if n = 0 then 0
  else if not (Policy.is_dynamic policy) then 0
  else count policy ~n ~p + p

let per_worker_bound policy ~n ~p =
  check ~n ~p;
  match (policy : Policy.t) with
  | Static_block -> 1
  | Static_cyclic -> if p = 1 then 1 else Im.cdiv n p
  | Self_sched _ | Gss | Factoring | Trapezoid ->
      (* Any one worker could claim every chunk. *)
      count policy ~n ~p

open Loopcoal_ir
module B = Builder

(* ---------- matrix multiply ---------- *)

let fill_a i k : Ast.expr = B.(var i + (int 2 * var k))
let fill_b k j : Ast.expr = B.(var k - var j)

let matmul ~ra ~ca ~cb : Ast.program =
  if ra < 1 || ca < 1 || cb < 1 then invalid_arg "Kernels.matmul: bad sizes";
  B.program
    ~arrays:[ B.array "A" [ ra; ca ]; B.array "B" [ ca; cb ]; B.array "C" [ ra; cb ] ]
    [
      B.doall "i" (B.int 1) (B.int ra)
        [
          B.doall "k" (B.int 1) (B.int ca)
            [ B.store "A" [ B.var "i"; B.var "k" ] (fill_a "i" "k") ];
        ];
      B.doall "k" (B.int 1) (B.int ca)
        [
          B.doall "j" (B.int 1) (B.int cb)
            [ B.store "B" [ B.var "k"; B.var "j" ] (fill_b "k" "j") ];
        ];
      B.doall "i" (B.int 1) (B.int ra)
        [
          B.doall "j" (B.int 1) (B.int cb)
            [
              B.store "C" [ B.var "i"; B.var "j" ] (B.real 0.0);
              B.for_ "k" (B.int 1) (B.int ca)
                [
                  B.store "C"
                    [ B.var "i"; B.var "j" ]
                    B.(
                      load "C" [ var "i"; var "j" ]
                      + (load "A" [ var "i"; var "k" ]
                        * load "B" [ var "k"; var "j" ]));
                ];
            ];
        ];
    ]

let matmul_reference ~ra ~ca ~cb =
  let a = Array.make_matrix ra ca 0.0
  and b = Array.make_matrix ca cb 0.0
  and c = Array.make (ra * cb) 0.0 in
  for i = 1 to ra do
    for k = 1 to ca do
      a.(i - 1).(k - 1) <- float_of_int (i + (2 * k))
    done
  done;
  for k = 1 to ca do
    for j = 1 to cb do
      b.(k - 1).(j - 1) <- float_of_int (k - j)
    done
  done;
  for i = 1 to ra do
    for j = 1 to cb do
      let acc = ref 0.0 in
      for k = 1 to ca do
        (* Mirror the IR's accumulation order exactly. *)
        acc := !acc +. (a.(i - 1).(k - 1) *. b.(k - 1).(j - 1))
      done;
      c.(((i - 1) * cb) + (j - 1)) <- !acc
    done
  done;
  c

(* ---------- Gauss-Jordan elimination ---------- *)

(* System setup: AB(i,j) = 1 for i <> j, n+1 on the diagonal (strictly
   dominant, well conditioned); right-hand sides AB(i, n+t) = i + t. *)

let gauss_jordan ~n ~m : Ast.program =
  if n < 1 || m < 1 then invalid_arg "Kernels.gauss_jordan: bad sizes";
  let w = n + m in
  B.program
    ~arrays:[ B.array "AB" [ n; w ]; B.array "X" [ n; m ] ]
    ~scalars:[ B.real_scalar "mult" ]
    [
      (* setup *)
      B.doall "i" (B.int 1) (B.int n)
        [
          B.doall "j" (B.int 1) (B.int n)
            [
              B.if_
                B.(var "i" = var "j")
                [ B.store "AB" [ B.var "i"; B.var "j" ] B.(int n + int 1) ]
                [ B.store "AB" [ B.var "i"; B.var "j" ] (B.int 1) ];
            ];
          B.doall "t" (B.int 1) (B.int m)
            [
              B.store "AB"
                [ B.var "i"; B.(int n + var "t") ]
                B.(var "i" + var "t");
            ];
        ];
      (* elimination: serial over pivots, parallel over rows *)
      B.for_ "j" (B.int 1) (B.int n)
        [
          B.doall "i" (B.int 1) (B.int n)
            [
              B.if_
                B.(var "i" <> var "j")
                [
                  B.assign "mult"
                    B.(
                      load "AB" [ var "i"; var "j" ]
                      / load "AB" [ var "j"; var "j" ]);
                  B.doall "k"
                    B.(var "j" + int 1)
                    (B.int w)
                    [
                      B.store "AB"
                        [ B.var "i"; B.var "k" ]
                        B.(
                          load "AB" [ var "i"; var "k" ]
                          - (var "mult" * load "AB" [ var "j"; var "k" ]));
                    ];
                ]
                [];
            ];
        ];
      (* back-substitution: the coalescible perfect nest *)
      B.doall "i" (B.int 1) (B.int n)
        [
          B.doall "t" (B.int 1) (B.int m)
            [
              B.store "X"
                [ B.var "i"; B.var "t" ]
                B.(
                  load "AB" [ var "i"; B.(int n + var "t") ]
                  / load "AB" [ var "i"; var "i" ]);
            ];
        ];
    ]

let gauss_jordan_reference ~n ~m =
  let w = n + m in
  let ab = Array.make_matrix n w 0.0 in
  for i = 1 to n do
    for j = 1 to n do
      ab.(i - 1).(j - 1) <- (if i = j then float_of_int (n + 1) else 1.0)
    done;
    for t = 1 to m do
      ab.(i - 1).(n + t - 1) <- float_of_int (i + t)
    done
  done;
  for j = 1 to n do
    for i = 1 to n do
      if i <> j then begin
        let mult = ab.(i - 1).(j - 1) /. ab.(j - 1).(j - 1) in
        for k = j + 1 to w do
          ab.(i - 1).(k - 1) <-
            ab.(i - 1).(k - 1) -. (mult *. ab.(j - 1).(k - 1))
        done
      end
    done
  done;
  let x = Array.make (n * m) 0.0 in
  for i = 1 to n do
    for t = 1 to m do
      x.(((i - 1) * m) + (t - 1)) <-
        ab.(i - 1).(n + t - 1) /. ab.(i - 1).(i - 1)
    done
  done;
  x

(* ---------- pi by midpoint integration ---------- *)

let calculate_pi ~intervals : Ast.program =
  if intervals < 1 then invalid_arg "Kernels.calculate_pi: bad size";
  B.program
    ~scalars:[ B.real_scalar "pi_val"; B.real_scalar "x" ]
    [
      B.for_ "c" (B.int 1) (B.int intervals)
        [
          B.assign "x" B.((var "c" - real 0.5) / int intervals);
          B.assign "pi_val"
            B.(
              var "pi_val"
              + real 4.0
                / (real 1.0 + (var "x" * var "x"))
                / int intervals);
        ];
    ]

let calculate_pi_reference ~intervals =
  let acc = ref 0.0 in
  for c = 1 to intervals do
    let x = (float_of_int c -. 0.5) /. float_of_int intervals in
    acc := !acc +. (4.0 /. (1.0 +. (x *. x)) /. float_of_int intervals)
  done;
  !acc

(* ---------- five-point stencil ---------- *)

let stencil ~n : Ast.program =
  if n < 3 then invalid_arg "Kernels.stencil: n must be >= 3";
  B.program
    ~arrays:[ B.array "A" [ n; n ]; B.array "B" [ n; n ] ]
    [
      B.doall "i" (B.int 1) (B.int n)
        [
          B.doall "j" (B.int 1) (B.int n)
            [ B.store "A" [ B.var "i"; B.var "j" ] B.(var "i" * var "j") ];
        ];
      B.doall "i" (B.int 2) B.(int n - int 1)
        [
          B.doall "j" (B.int 2)
            B.(int n - int 1)
            [
              B.store "B"
                [ B.var "i"; B.var "j" ]
                B.(
                  (load "A" [ var "i" - int 1; var "j" ]
                  + load "A" [ var "i" + int 1; var "j" ]
                  + load "A" [ var "i"; var "j" - int 1 ]
                  + load "A" [ var "i"; var "j" + int 1 ]
                  + load "A" [ var "i"; var "j" ])
                  / real 5.0);
            ];
        ];
    ]

let stencil_reference ~n =
  let a = Array.make_matrix n n 0.0 in
  for i = 1 to n do
    for j = 1 to n do
      a.(i - 1).(j - 1) <- float_of_int (i * j)
    done
  done;
  let b = Array.make (n * n) 0.0 in
  for i = 2 to n - 1 do
    for j = 2 to n - 1 do
      b.(((i - 1) * n) + (j - 1)) <-
        (a.(i - 2).(j - 1) +. a.(i).(j - 1) +. a.(i - 1).(j - 2)
        +. a.(i - 1).(j) +. a.(i - 1).(j - 1))
        /. 5.0
    done
  done;
  b

(* ---------- array swap through a temporary ---------- *)

let swap ~n : Ast.program =
  if n < 1 then invalid_arg "Kernels.swap: bad size";
  B.program
    ~arrays:[ B.array "A" [ n ]; B.array "B" [ n ] ]
    ~scalars:[ B.real_scalar "t" ]
    [
      B.doall "i" (B.int 1) (B.int n)
        [ B.store "A" [ B.var "i" ] B.(var "i" * int 3) ];
      B.doall "i" (B.int 1) (B.int n)
        [ B.store "B" [ B.var "i" ] B.(int 100 + var "i") ];
      B.for_ "i" (B.int 1) (B.int n)
        [
          B.assign "t" (B.load "A" [ B.var "i" ]);
          B.store "A" [ B.var "i" ] (B.load "B" [ B.var "i" ]);
          B.store "B" [ B.var "i" ] (B.var "t");
        ];
    ]

(* ---------- wavefront (serial control) ---------- *)

let wavefront ~n : Ast.program =
  if n < 2 then invalid_arg "Kernels.wavefront: n must be >= 2";
  B.program
    ~arrays:[ B.array "A" [ n; n ] ]
    [
      B.doall "i" (B.int 1) (B.int n)
        [
          B.doall "j" (B.int 1) (B.int n)
            [ B.store "A" [ B.var "i"; B.var "j" ] B.(var "i" + var "j") ];
        ];
      B.for_ "i" (B.int 2) (B.int n)
        [
          B.for_ "j" (B.int 2) (B.int n)
            [
              B.store "A"
                [ B.var "i"; B.var "j" ]
                B.(
                  load "A" [ var "i" - int 1; var "j" ]
                  + load "A" [ var "i"; var "j" - int 1 ]);
            ];
        ];
    ]

(* ---------- matrix transpose ---------- *)

let transpose ~n : Ast.program =
  if n < 1 then invalid_arg "Kernels.transpose: bad size";
  B.program
    ~arrays:[ B.array "A" [ n; n ]; B.array "B" [ n; n ] ]
    [
      B.doall "i" (B.int 1) (B.int n)
        [
          B.doall "j" (B.int 1) (B.int n)
            [ B.store "A" [ B.var "i"; B.var "j" ] B.((var "i" * int 100) + var "j") ];
        ];
      B.doall "i" (B.int 1) (B.int n)
        [
          B.doall "j" (B.int 1) (B.int n)
            [ B.store "B" [ B.var "i"; B.var "j" ] (B.load "A" [ B.var "j"; B.var "i" ]) ];
        ];
    ]

let transpose_reference ~n =
  let b = Array.make (n * n) 0.0 in
  for i = 1 to n do
    for j = 1 to n do
      b.(((i - 1) * n) + (j - 1)) <- float_of_int ((j * 100) + i)
    done
  done;
  b

(* ---------- histogram ---------- *)

(* Bucket keys are a fixed non-affine function of i, (i*7) mod buckets + 1,
   so the reference mirrors them exactly. (Arrays hold reals, so a
   data-array-driven subscript is not expressible; the Mod keeps the
   subscript outside the affine fragment, which is the point.) *)
let bucket_expr buckets : Ast.expr =
  B.(((var "i" * int 7) % int buckets) + int 1)

let histogram ~n ~buckets : Ast.program =
  if n < 1 || buckets < 1 then invalid_arg "Kernels.histogram: bad sizes";
  B.program
    ~arrays:[ B.array "H" [ buckets ] ]
    [
      B.for_ "i" (B.int 1) (B.int n)
        [
          B.store "H"
            [ bucket_expr buckets ]
            B.(load "H" [ bucket_expr buckets ] + real 1.0);
        ];
    ]

let histogram_reference ~n ~buckets =
  let h = Array.make buckets 0.0 in
  for i = 1 to n do
    let k = ((i * 7) mod buckets) + 1 in
    h.(k - 1) <- h.(k - 1) +. 1.0
  done;
  h

(* ---------- conditional stencil (branch in the body) ---------- *)

let cond_stencil ~n : Ast.program =
  if n < 3 then invalid_arg "Kernels.cond_stencil: n must be >= 3";
  B.program
    ~arrays:[ B.array "A" [ n ]; B.array "B" [ n ]; B.array "C" [ n ] ]
    ~scalars:[ B.real_scalar "t" ]
    [
      B.doall "i" (B.int 1) (B.int n)
        [
          B.store "A" [ B.var "i" ] B.(var "i" * int 2);
          B.store "C" [ B.var "i" ] B.(var "i" % int 2);
        ];
      B.doall "i" (B.int 2)
        B.(int n - int 1)
        [
          B.assign "t"
            B.(
              load "A" [ var "i" - int 1 ]
              + load "A" [ var "i" ]
              + load "A" [ var "i" + int 1 ]);
          B.if_
            B.(load "C" [ var "i" ] > real 0.5)
            [ B.store "B" [ B.var "i" ] B.(var "t" * real 0.25) ]
            [ B.store "B" [ B.var "i" ] B.(var "t" * real 0.5) ];
        ];
    ]

let cond_stencil_reference ~n =
  let a = Array.make n 0.0 and c = Array.make n 0.0 in
  for i = 1 to n do
    a.(i - 1) <- float_of_int (i * 2);
    c.(i - 1) <- float_of_int (i mod 2)
  done;
  let b = Array.make n 0.0 in
  for i = 2 to n - 1 do
    let t = a.(i - 2) +. a.(i - 1) +. a.(i) in
    b.(i - 1) <- (if c.(i - 1) > 0.5 then t *. 0.25 else t *. 0.5)
  done;
  b

(* ---------- triangular gather (variable-step serial loop) ---------- *)

let tri_gather ~n : Ast.program =
  if n < 1 then invalid_arg "Kernels.tri_gather: n must be >= 1";
  B.program
    ~arrays:[ B.array "A" [ n ]; B.array "S" [ n ] ]
    ~scalars:[ B.real_scalar "s" ]
    [
      B.doall "i" (B.int 1) (B.int n)
        [ B.store "A" [ B.var "i" ] B.((var "i" % int 7) + int 1) ];
      B.doall "i" (B.int 1) (B.int n)
        [
          B.assign "s" (B.real 0.0);
          B.for_ ~step:(B.var "i") "j" (B.var "i") (B.int n)
            [
              B.assign "s"
                B.(var "s" + (load "A" [ var "i" ] * load "A" [ var "j" ]));
            ];
          B.store "S" [ B.var "i" ] (B.var "s");
        ];
    ]

let tri_gather_reference ~n =
  let a = Array.make n 0.0 in
  for i = 1 to n do
    a.(i - 1) <- float_of_int ((i mod 7) + 1)
  done;
  let s = Array.make n 0.0 in
  for i = 1 to n do
    let acc = ref 0.0 in
    let j = ref i in
    while !j <= n do
      acc := !acc +. (a.(i - 1) *. a.(!j - 1));
      j := !j + i
    done;
    s.(i - 1) <- !acc
  done;
  s

(* ---------- relaxation sweeps (serial outer, parallel inner) ---------- *)

let relax ~n ~steps : Ast.program =
  if n < 1 || steps < 1 then invalid_arg "Kernels.relax: bad sizes";
  B.program
    ~arrays:[ B.array "A" [ n ]; B.array "B" [ n ] ]
    [
      B.doall "i" (B.int 1) (B.int n)
        [
          B.store "A" [ B.var "i" ] B.(var "i" % int 5);
          B.store "B" [ B.var "i" ] B.((var "i" % int 3) * real 0.125);
        ];
      B.for_ "t" (B.int 1) (B.int steps)
        [
          B.doall "i" (B.int 1) (B.int n)
            [
              B.store "A" [ B.var "i" ]
                B.((real 0.99 * load "A" [ var "i" ]) + load "B" [ var "i" ]);
            ];
        ];
    ]

let relax_reference ~n ~steps =
  let a = Array.init n (fun i -> float_of_int ((i + 1) mod 5)) in
  let b = Array.init n (fun i -> float_of_int ((i + 1) mod 3) *. 0.125) in
  for _t = 1 to steps do
    for i = 0 to n - 1 do
      a.(i) <- (0.99 *. a.(i)) +. b.(i)
    done
  done;
  a

let all_names =
  [ "matmul"; "gauss_jordan"; "pi"; "stencil"; "swap"; "wavefront";
    "transpose"; "histogram"; "cond_stencil"; "tri_gather"; "relax" ]

let by_name = function
  | "matmul" -> Some (fun () -> matmul ~ra:8 ~ca:6 ~cb:7)
  | "gauss_jordan" -> Some (fun () -> gauss_jordan ~n:8 ~m:3)
  | "pi" -> Some (fun () -> calculate_pi ~intervals:1000)
  | "stencil" -> Some (fun () -> stencil ~n:10)
  | "swap" -> Some (fun () -> swap ~n:16)
  | "wavefront" -> Some (fun () -> wavefront ~n:8)
  | "transpose" -> Some (fun () -> transpose ~n:10)
  | "histogram" -> Some (fun () -> histogram ~n:64 ~buckets:10)
  | "cond_stencil" -> Some (fun () -> cond_stencil ~n:12)
  | "tri_gather" -> Some (fun () -> tri_gather ~n:10)
  | "relax" -> Some (fun () -> relax ~n:24 ~steps:12)
  | _ -> None

(** IR kernels: the programs the examples, tests and benches compile.

    Each kernel comes with a plain-OCaml reference implementation so the
    full pipeline (parse/build -> transform -> interpret) can be validated
    against independently computed results. *)

open Loopcoal_ir

(** {1 Matrix multiply} — the classic coalescing motivation: the [i, j]
    DOALLs collapse into one loop of [rows_a * cols_b] iterations. *)

val matmul : ra:int -> ca:int -> cb:int -> Ast.program
(** Arrays [A(ra, ca)], [B(ca, cb)], [C(ra, cb)]. [A] and [B] are first
    filled with deterministic values by (parallel) init nests, then
    [C = A * B] is computed by the doubly-parallel nest with a serial
    k-loop inside. *)

val matmul_reference : ra:int -> ca:int -> cb:int -> float array
(** Row-major contents of [C] computed directly in OCaml. *)

(** {1 Gauss-Jordan elimination} — solves [A X = B] for [X]
    ([n] x [n] system with [m] right-hand sides), with the augmented matrix
    [AB(n, n+m)]. The second phase (back-substitution into X) is the
    perfectly-nested doubly-parallel loop the thesis text coalesces; the
    first phase's parallel loops are not perfectly nested (hybrid case). *)

val gauss_jordan : n:int -> m:int -> Ast.program
(** Builds a well-conditioned system (diagonally dominant), eliminates, and
    leaves the solution in [X(n, m)]. *)

val gauss_jordan_reference : n:int -> m:int -> float array
(** Row-major [X] computed directly in OCaml with the same algorithm. *)

(** {1 Pi integration} — [integral of 4/(1+x^2) over [0,1]] by midpoint
    rule with [intervals] points; a 1-D reduction, deliberately {e not}
    coalescible (depth 1) and not a DOALL (accumulates into a scalar).
    Used as the control kernel. *)

val calculate_pi : intervals:int -> Ast.program
(** The result accumulates into scalar [pi]. *)

val calculate_pi_reference : intervals:int -> float

(** {1 Five-point stencil sweep} — one Jacobi step [B = stencil(A)] on an
    [n] x [n] grid interior: a doubly-parallel perfect nest with
    neighbouring loads, coalescible, dependence-test exercise. *)

val stencil : n:int -> Ast.program
val stencil_reference : n:int -> float array
(** Row-major contents of [B]. *)

(** {1 Array swap} — elementwise swap through a scalar temporary: not a
    DOALL as written (scalar anti-dependence); becomes one after scalar
    expansion. *)

val swap : n:int -> Ast.program

(** {1 Wavefront} — [A(i,j) = A(i-1,j) + A(i,j-1)] over the interior: a
    genuinely serial-carried nest the dependence analysis must refuse to
    mark parallel. *)

val wavefront : n:int -> Ast.program

(** {1 Matrix transpose} — [B = A^T]: a doubly-parallel perfect nest whose
    two reference orders (row-major write, column-major read) make it the
    canonical interchange/tiling subject. *)

val transpose : n:int -> Ast.program
val transpose_reference : n:int -> float array
(** Row-major contents of [B]. *)

(** {1 Histogram} — [H[(i*7) mod buckets + 1] += 1]: a non-affine
    subscript the dependence analysis cannot see through, so it must
    refuse to parallelize (two iterations can hit the same bucket) —
    the conservative path's control kernel. *)

val histogram : n:int -> buckets:int -> Ast.program
val histogram_reference : n:int -> buckets:int -> float array

(** {1 Conditional stencil} — a three-point gather whose write picks its
    scale behind a data-dependent branch: [B(i) = t * 0.25] or
    [t * 0.5] depending on [C(i)]. A DOALL with a branchy body — the
    shape the SSA optimizer streams through shared slots across
    exclusive arms (pre-SSA it fell back to the unoptimized tape). *)

val cond_stencil : n:int -> Ast.program
val cond_stencil_reference : n:int -> float array
(** Contents of [B]. *)

(** {1 Triangular gather} — [S(i) = sum over j = i, 2i, 3i, .. n of
    A(i)*A(j)]: a DOALL over a variable-step (step [i]) serial loop with
    a loop-invariant load. Exercises cross-block LICM (hoisting [A(i)])
    and run-time-bump offset streaming ([Vsv]) together. *)

val tri_gather : n:int -> Ast.program
val tri_gather_reference : n:int -> float array
(** Contents of [S]. *)

(** {1 Relaxation sweeps} — [steps] Jacobi-style updates
    [A(i) = 0.99*A(i) + B(i)] under a serial time loop: as written the
    runtime forks once per sweep; hoisting the parallel loop outward
    (legal — the carried dependence is elementwise) leaves one fork
    total. The canonical subject of the transformation searcher. *)

val relax : n:int -> steps:int -> Ast.program
val relax_reference : n:int -> steps:int -> float array
(** Contents of [A] after [steps] sweeps. *)

val all_names : string list
val by_name : string -> (unit -> Ast.program) option
(** Kernels at a small default size, for the CLI. *)

module Table = Loopcoal_util.Table

type side = { speedup : float; dispatches : int; imbalance : float }

type score = {
  kernel : string;
  policy : string;
  domains : int;
  predicted : side;
  measured : side;
  speedup_log2_err : float;
  dispatches_exact : bool;
  grade : string;
}

let log2 x = log x /. log 2.0

let score ~kernel ~policy ~domains ~predicted ~measured =
  let err =
    if predicted.speedup <= 0.0 || measured.speedup <= 0.0 then infinity
    else Float.abs (log2 (measured.speedup /. predicted.speedup))
  in
  {
    kernel;
    policy;
    domains;
    predicted;
    measured;
    speedup_log2_err = err;
    dispatches_exact = predicted.dispatches = measured.dispatches;
    grade = (if err < 0.5 then "good" else if err < 1.0 then "fair" else "poor");
  }

let table scores =
  let t =
    Table.create ~title:"model check: event simulator vs traced execution"
      [
        ("kernel", Table.Left);
        ("policy", Table.Left);
        ("domains", Table.Right);
        ("pred speedup", Table.Right);
        ("meas speedup", Table.Right);
        ("log2 err", Table.Right);
        ("pred disp", Table.Right);
        ("meas disp", Table.Right);
        ("pred imbal", Table.Right);
        ("meas imbal", Table.Right);
        ("grade", Table.Left);
      ]
  in
  List.iter
    (fun s ->
      Table.add_row t
        [
          s.kernel;
          s.policy;
          Table.cell_int s.domains;
          Table.cell_ratio s.predicted.speedup;
          Table.cell_ratio s.measured.speedup;
          Table.cell_float s.speedup_log2_err;
          Table.cell_int s.predicted.dispatches;
          Table.cell_int s.measured.dispatches;
          Table.cell_float s.predicted.imbalance;
          Table.cell_float s.measured.imbalance;
          s.grade;
        ])
    scores;
  t

let summary scores =
  let count g = List.length (List.filter (fun s -> s.grade = g) scores) in
  match scores with
  | [] -> "model check: no scores"
  | _ ->
      let worst =
        List.fold_left
          (fun (w : score) s ->
            if s.speedup_log2_err > w.speedup_log2_err then s else w)
          (List.hd scores) (List.tl scores)
      in
      Printf.sprintf
        "model check: %d good, %d fair, %d poor of %d; worst %s/%s@%d \
         (predicted %.2fx, measured %.2fx)"
        (count "good") (count "fair") (count "poor") (List.length scores)
        worst.kernel worst.policy worst.domains worst.predicted.speedup
        worst.measured.speedup

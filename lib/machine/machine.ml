type t = {
  p : int;
  dispatch_cost : float;
  fork_cost : float;
  barrier_cost : float;
  serialized_dispatch : bool;
}

let ideal ~p =
  {
    p;
    dispatch_cost = 0.0;
    fork_cost = 0.0;
    barrier_cost = 0.0;
    serialized_dispatch = false;
  }

let default ~p =
  {
    p;
    dispatch_cost = 10.0;
    fork_cost = 250.0;
    barrier_cost = 100.0;
    serialized_dispatch = false;
  }

let no_combining ~p = { (default ~p) with serialized_dispatch = true }

let validate t =
  if t.p < 1 then Error "machine needs at least one processor"
  else if
    t.dispatch_cost < 0.0 || t.fork_cost < 0.0 || t.barrier_cost < 0.0
  then Error "costs must be non-negative"
  else Ok ()

(* ---------- host calibration ---------- *)

type calibration = {
  cal_p : int;  (** processors the calibration run saw *)
  dispatch_ns : float;  (** one fetch&add on the shared counter *)
  fork_ns : float;  (** starting a parallel loop (pool wake) *)
  barrier_ns : float;  (** joining it *)
  tape_op_ns : float;  (** one weighted op on the bytecode tape *)
  closure_op_ns : float;  (** one weighted op in the closure tier *)
}

(* Conservative constants for a machine nobody has calibrated: the
   ratios (closure ~3x the tape per op, fork/barrier microseconds,
   dispatch tens of ns) are what the bench history shows across hosts;
   the absolute values only set the scale of predicted times. *)
let default_calibration =
  {
    cal_p = 1;
    dispatch_ns = 40.0;
    fork_ns = 4000.0;
    barrier_ns = 1500.0;
    tape_op_ns = 3.0;
    closure_op_ns = 9.0;
  }

let machine_of_calibration ~p cal =
  {
    p;
    dispatch_cost = cal.dispatch_ns;
    fork_cost = cal.fork_ns;
    barrier_cost = cal.barrier_ns;
    serialized_dispatch = false;
  }

let validate_calibration c =
  if c.cal_p < 1 then Error "calibration: p must be >= 1"
  else if
    List.exists
      (fun v -> (not (Float.is_finite v)) || v < 0.0)
      [ c.dispatch_ns; c.fork_ns; c.barrier_ns; c.tape_op_ns; c.closure_op_ns ]
  then Error "calibration: costs must be finite and non-negative"
  else if c.tape_op_ns <= 0.0 || c.closure_op_ns <= 0.0 then
    Error "calibration: per-op costs must be positive"
  else Ok ()

let calibration_to_json c =
  Printf.sprintf
    "{\n\
    \  \"p\": %d,\n\
    \  \"dispatch_ns\": %.3f,\n\
    \  \"fork_ns\": %.3f,\n\
    \  \"barrier_ns\": %.3f,\n\
    \  \"tape_op_ns\": %.3f,\n\
    \  \"closure_op_ns\": %.3f\n\
     }\n"
    c.cal_p c.dispatch_ns c.fork_ns c.barrier_ns c.tape_op_ns c.closure_op_ns

(* Fixed-shape parser for the file [calibration_to_json] writes: a flat
   object of numeric fields. No vendored JSON library (the repo pins
   golden bytes elsewhere by hand-rolling), so parse by scanning
   "key" : number pairs; unknown keys are ignored, missing keys keep
   their defaults. *)
let calibration_of_json s =
  let n = String.length s in
  let fields = ref [] in
  let i = ref 0 in
  (try
     while !i < n do
       match String.index_from s !i '"' with
       | exception Not_found -> i := n
       | q1 -> (
           match String.index_from s (q1 + 1) '"' with
           | exception Not_found -> i := n
           | q2 ->
               let key = String.sub s (q1 + 1) (q2 - q1 - 1) in
               let j = ref (q2 + 1) in
               while
                 !j < n && (s.[!j] = ' ' || s.[!j] = '\t' || s.[!j] = ':')
               do
                 incr j
               done;
               let start = !j in
               while
                 !j < n
                 && (match s.[!j] with
                    | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
                    | _ -> false)
               do
                 incr j
               done;
               (if !j > start then
                  match float_of_string_opt (String.sub s start (!j - start)) with
                  | Some v -> fields := (key, v) :: !fields
                  | None -> ());
               i := !j + 1)
     done
   with _ -> ());
  match !fields with
  | [] -> Error "calibration: no numeric fields found"
  | fs ->
      let get key dflt =
        match List.assoc_opt key fs with Some v -> v | None -> dflt
      in
      let d = default_calibration in
      let c =
        {
          cal_p = int_of_float (get "p" (float_of_int d.cal_p));
          dispatch_ns = get "dispatch_ns" d.dispatch_ns;
          fork_ns = get "fork_ns" d.fork_ns;
          barrier_ns = get "barrier_ns" d.barrier_ns;
          tape_op_ns = get "tape_op_ns" d.tape_op_ns;
          closure_op_ns = get "closure_op_ns" d.closure_op_ns;
        }
      in
      Result.map (fun () -> c) (validate_calibration c)

let load_calibration file =
  match open_in_bin file with
  | exception Sys_error m -> Error m
  | ic ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in_noerr ic;
      calibration_of_json s

(** Predicted-vs-measured scoring of the machine model.

    The event simulator predicts completion, dispatch counts and load
    balance per (kernel, policy, domain count); the runtime tracer
    measures the same quantities on real OCaml domains. This module puts
    the two side by side and grades how well the analytic model held up —
    the paper's overhead claims, checked instead of assumed.

    Both sides arrive as plain numbers, so this module depends on
    neither the simulator's nor the tracer's internals. *)

type side = {
  speedup : float;  (** vs the 1-worker baseline of the same engine *)
  dispatches : int;
  imbalance : float;  (** max/mean per-worker busy time; 1.0 = perfect *)
}

type score = {
  kernel : string;
  policy : string;
  domains : int;
  predicted : side;
  measured : side;
  speedup_log2_err : float;
      (** [|log2 (measured.speedup / predicted.speedup)|]: 0 = exact,
          1 = off by 2x in either direction *)
  dispatches_exact : bool;
  grade : string;  (** "good" (< 0.5), "fair" (< 1.0), "poor" *)
}

val score :
  kernel:string ->
  policy:string ->
  domains:int ->
  predicted:side ->
  measured:side ->
  score

val table : score list -> Loopcoal_util.Table.t
(** One row per score: kernel, policy, domains, predicted vs measured
    speedup, dispatch match, imbalance on both sides, grade. *)

val summary : score list -> string
(** One line: how many scores fell in each grade, and the worst case. *)

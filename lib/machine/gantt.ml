type span = { row : int; t0 : float; t1 : float }

let render_spans ?(width = 72) ?(rows = 0) ?header spans =
  if spans = [] then invalid_arg "Gantt.render_spans: empty span list";
  List.iter
    (fun s ->
      if s.row < 0 then invalid_arg "Gantt.render_spans: negative row";
      if s.t1 < s.t0 then invalid_arg "Gantt.render_spans: span ends before it starts")
    spans;
  let p =
    max rows (1 + List.fold_left (fun m s -> max m s.row) 0 spans)
  in
  let horizon = List.fold_left (fun m s -> Float.max m s.t1) 1e-9 spans in
  let scale t = int_of_float (t /. horizon *. float_of_int (width - 1)) in
  let rows = Array.init p (fun _ -> Bytes.make width ' ') in
  let nth_on_row = Array.make p 0 in
  List.iter
    (fun s ->
      let row = rows.(s.row) in
      let glyph = if nth_on_row.(s.row) mod 2 = 0 then '#' else '=' in
      nth_on_row.(s.row) <- nth_on_row.(s.row) + 1;
      let a = scale s.t0 in
      let b = max a (scale s.t1) in
      for x = a to min b (width - 1) do
        Bytes.set row x glyph
      done)
    spans;
  let buf = Buffer.create (p * (width + 8)) in
  (match header with
  | None -> ()
  | Some h -> Buffer.add_string buf (h ^ "\n"));
  Array.iteri
    (fun q row ->
      Buffer.add_string buf
        (Printf.sprintf "p%-3d |%s|\n" q (Bytes.to_string row)))
    rows;
  Buffer.contents buf

let render ?width (r : Event_sim.result) =
  if r.Event_sim.trace = [] then invalid_arg "Gantt.render: empty trace";
  let spans =
    List.map
      (fun c ->
        {
          row = c.Event_sim.proc;
          t0 = c.Event_sim.issue_time;
          t1 = c.Event_sim.issue_time +. c.Event_sim.cost;
        })
      r.Event_sim.trace
  in
  let horizon = List.fold_left (fun m s -> Float.max m s.t1) 1e-9 spans in
  let header =
    Printf.sprintf "time 0 .. %.0f (completion %.0f, %d dispatches)" horizon
      r.Event_sim.completion r.Event_sim.dispatches
  in
  render_spans ?width ~header spans

let print ?width r = print_string (render ?width r)

(** Shared-memory parallel machine model.

    Costs are in abstract "instructions", matching the original
    evaluation's static instruction counting. The dispatch cost models the
    fetch&add on the shared iteration counter; [serialized_dispatch]
    models a machine {e without} a combining network, where simultaneous
    fetch&adds queue up. *)

type t = {
  p : int;  (** number of processors, >= 1 *)
  dispatch_cost : float;
      (** per chunk claimed from the shared counter (dynamic policies) or
          per processor start (static policies) *)
  fork_cost : float;  (** one-time cost to start the parallel loop *)
  barrier_cost : float;  (** one-time cost to join *)
  serialized_dispatch : bool;
}

val ideal : p:int -> t
(** Zero-overhead machine: the analytic bounds should match exactly. *)

val default : p:int -> t
(** Overheads in the spirit of the 1987 measurements: dispatch 10,
    fork 250, barrier 100, combining network present. *)

val no_combining : p:int -> t
(** Like [default] but dispatches serialize. *)

val validate : t -> (unit, string) result

(** {1 Host calibration}

    Measured per-primitive costs in nanoseconds, produced by
    [loopc calibrate] and consumed by the transformation-search scorer
    ({!Loopcoal_transform.Search} at the umbrella layer). When no
    calibration file exists the scorer falls back on
    [default_calibration], whose ratios mirror the bench history. *)

type calibration = {
  cal_p : int;  (** processors the calibration run saw *)
  dispatch_ns : float;  (** one fetch&add on the shared counter *)
  fork_ns : float;  (** starting a parallel loop (pool wake) *)
  barrier_ns : float;  (** joining it *)
  tape_op_ns : float;  (** one weighted op on the bytecode tape *)
  closure_op_ns : float;  (** one weighted op in the closure tier *)
}

val default_calibration : calibration

val machine_of_calibration : p:int -> calibration -> t
(** Machine model in nanosecond units for [p] processors. *)

val validate_calibration : calibration -> (unit, string) result
val calibration_to_json : calibration -> string

val calibration_of_json : string -> (calibration, string) result
(** Parses the flat numeric object [calibration_to_json] writes; missing
    fields keep their default values, malformed input is an [Error]. *)

val load_calibration : string -> (calibration, string) result

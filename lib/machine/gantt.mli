(** ASCII Gantt rendering of a dispatch trace: one row per processor,
    time left to right, each chunk drawn over its execution span with a
    glyph that alternates between consecutive chunks so dispatch
    boundaries stay visible. Idle time is blank.

    The span renderer is shared by the event simulator's {e predicted}
    schedules and the runtime tracer's {e measured} ones, so the two can
    be put side by side in the same visual language. *)

type span = {
  row : int;  (** processor / domain, 0-based *)
  t0 : float;  (** span start, any consistent unit *)
  t1 : float;  (** span end; [t1 >= t0] *)
}

val render_spans :
  ?width:int -> ?rows:int -> ?header:string -> span list -> string
(** Render arbitrary spans, scaled to the latest [t1]. Spans on a row are
    drawn in list order with alternating glyphs. [rows] forces a minimum
    row count, so processors that executed nothing still show as (empty)
    rows. Raises [Invalid_argument] on an empty list or a negative
    row. *)

val render : ?width:int -> Event_sim.result -> string
(** The simulator's trace through {!render_spans}, with a header line
    reporting horizon, completion and dispatch count. Raises
    [Invalid_argument] on an empty trace. *)

val print : ?width:int -> Event_sim.result -> unit

(** Diagnostics framework for the static race verifier.

    Codes are stable and part of the CLI contract (golden tests pin both
    renderers byte-for-byte): LC001–LC003 are errors (proven or
    unexcludable races), LC004/LC005/LC009 are warnings (the analysis had
    to give up), LC006–LC008 are informational. The AST carries no source
    positions, so locations are structural: the 1-based ordinal of the
    parallel region in textual order, plus the subject (array or scalar)
    the diagnostic is about. *)

type severity = Info | Warning | Error

val severity_to_string : severity -> string

type t = {
  code : string;  (** stable "LCnnn" identifier *)
  severity : severity;
  region : int;  (** 1-based region ordinal; 0 = whole program *)
  subject : string;  (** array or scalar concerned; may be empty *)
  message : string;
}

val make :
  code:string ->
  severity:severity ->
  region:int ->
  subject:string ->
  string ->
  t

val catalog : (string * severity * string) list
(** Every known code with its fixed severity and summary, in code order. *)

val severity_of_code : string -> severity option

val counts : t list -> int * int * int
(** (errors, warnings, infos) *)

val worst : t list -> severity option

type region_info = {
  ri_ordinal : int;
  ri_label : string;  (** e.g. ["doall j"] or ["doall i.k"] *)
  ri_iters : int option;  (** iteration count when statically known *)
}

type report = { target : string; regions : region_info list; diags : t list }

val render_text : report -> string
val render_json : report -> string

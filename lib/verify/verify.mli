(** Static DOALL race verifier over the regions the runtime forks.

    For each parallel region the runtime executor would fork (discovery
    mirrors [Loopcoal_runtime.Compile] exactly), enumerates every
    read/write and write/write pair of array references and asks whether
    two {e distinct} iterations of the flattened (coalesced) index space
    can touch the same element, via {!Depend.carried} per level.
    Coalesced single-loop regions are first put in quotient/remainder
    normal form ({!Qnf}), turning index-recovery scalars back into
    bounded pseudo-indices, so the verdict on a coalesced program equals
    the verdict on the original nest. *)

open Loopcoal_ir

(** Recovery metadata forwarded from the coalescing transformation
    (see [Coalesce.recovery_meta]): the coalesced index name and the
    recovered digits with constant sizes, outermost first. *)
type hint = { h_coalesced : Ast.var; h_digits : (Ast.var * int) list }

type verdict =
  | Race_free  (** every pair proven independent *)
  | Unverified  (** analysis gave up somewhere (warnings) *)
  | Racy  (** at least one conflict could not be excluded (errors) *)

type region = {
  ordinal : int;  (** 1-based, textual order *)
  indices : Ast.var list;  (** analysis levels: nest or pseudo indices *)
  label : string;  (** e.g. ["doall j"] or ["doall i.k"] *)
  iterations : int option;
  verdict : verdict;
  diags : Diag.t list;
}

type result = { regions : region list; diags : Diag.t list }

val collect_nest : Ast.loop -> Ast.loop list * Ast.block
(** The maximal coalescible parallel prefix the runtime would fork as one
    region — nest loops outermost first, plus the body below the prefix.
    Exposed so cost models score exactly the regions the executor forks. *)

val check_program : ?hints:hint list -> Ast.program -> result

val report : ?target:string -> result -> Diag.report
(** Package for the {!Diag} renderers; [target] is the file name. *)

val race_free : result -> bool
(** Every region proven [Race_free]. *)

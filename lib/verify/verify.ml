(* Whole-program static race detection for the parallel regions the
   runtime actually forks.

   Region discovery mirrors [Loopcoal_runtime.Compile.compile_parallel_nest]
   exactly: a [Parallel] loop not already inside a parallel region roots a
   region, extended by the maximal rectangular perfectly-nested parallel
   prefix; everything below (including nested [Parallel] loops, which the
   runtime executes serially) is the region body. The question asked per
   region is the DOALL legality question for the *flattened* iteration
   space: can two distinct iteration vectors conflict?

   Two distinct vectors differ first at some level k — equal before it,
   unrelated after it — so the region races iff some level k admits a
   solution with [Ceq] coupling at levels < k, [Clt]/[Cgt] at k, and
   [Cany] at levels > k. That is exactly {!Depend.carried} with a
   [classify_rest] built from the level positions.

   Coalesced regions are first put in quotient/remainder normal form
   ({!Qnf}): the leading index-recovery definitions become bounded
   pseudo-indices playing the role of the original nest levels, and the
   test above applies unchanged. Since the coalesced body is the original
   body verbatim (the recovered scalars keep the original index names),
   the dependence problems before and after coalescing are literally
   identical — which is the paper's legality claim, discharged
   statically. *)

open Loopcoal_ir
module Affine = Loopcoal_analysis.Affine
module Depend = Loopcoal_analysis.Depend
module Loop_class = Loopcoal_analysis.Loop_class
module Privatize = Loopcoal_analysis.Privatize
module Qnf = Loopcoal_analysis.Qnf
module Reduction = Loopcoal_analysis.Reduction
module Usedef = Loopcoal_analysis.Usedef
module Vset = Usedef.Vset

type hint = { h_coalesced : Ast.var; h_digits : (Ast.var * int) list }

type verdict = Race_free | Unverified | Racy

type region = {
  ordinal : int;
  indices : Ast.var list;  (** analysis levels: nest or pseudo indices *)
  label : string;
  iterations : int option;
  verdict : verdict;
  diags : Diag.t list;
}

type result = { regions : region list; diags : Diag.t list }

(* ---------- region discovery (mirrors the runtime compiler) ---------- *)

let collect_nest (l : Ast.loop) =
  let rec collect acc (cur : Ast.loop) =
    let names =
      List.map (fun (x : Ast.loop) -> x.Ast.index) (List.rev (cur :: acc))
    in
    match cur.Ast.body with
    | [ For inner ]
      when inner.par = Parallel
           && Ast.equal_expr inner.step (Ast.Int 1)
           && (not (List.mem inner.index names))
           && (let bound_vars =
                 Ast.expr_vars inner.lo @ Ast.expr_vars inner.hi
               in
               (not (List.exists (fun v -> List.mem v names) bound_vars))
               && not
                    (List.exists
                       (fun v -> Vset.mem v (Usedef.scalar_writes inner.body))
                       bound_vars)) ->
        collect (cur :: acc) inner
    | _ -> (List.rev (cur :: acc), cur.Ast.body)
  in
  collect [] l

let rec regions_of_block ~in_par acc (b : Ast.block) =
  List.fold_left (regions_of_stmt ~in_par) acc b

and regions_of_stmt ~in_par acc (s : Ast.stmt) =
  match s with
  | Assign _ -> acc
  | If (_, t, f) ->
      regions_of_block ~in_par (regions_of_block ~in_par acc t) f
  | For l when (not in_par) && l.par = Parallel ->
      (* The runtime compiles the region body with [in_par = true]: no
         further forks happen inside, so discovery does not descend. *)
      collect_nest l :: acc
  | For l -> regions_of_block ~in_par acc l.body

(* ---------- coalesced-index recovery recognition ---------- *)

(* Longest leading run of scalar definitions closed over the coalesced
   index [j] — the shape of generated recovery code. *)
let recovery_prefix ~j (body : Ast.block) =
  let rec go acc rest =
    match rest with
    | Ast.Assign (Ast.Scalar v, e) :: tl
      when (not (String.equal v j))
           && (not (List.exists (fun (w, _) -> String.equal v w) acc))
           && List.for_all (String.equal j) (Ast.expr_vars e) ->
        go ((v, e) :: acc) tl
    | _ -> (List.rev acc, rest)
  in
  go [] body

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let rec drop n = function
  | xs when n = 0 -> xs
  | [] -> []
  | _ :: rest -> drop (n - 1) rest

type qnf_outcome =
  | Plain  (** nothing resembling recovery arithmetic *)
  | Unrecognized  (** division of the index, but no decomposition found *)
  | Recovered of Qnf.t * Ast.block
      (** decomposition plus the body with recognized definitions removed *)

(* Bounds like [10 - 1] are constant without being literal [Int]s: fold
   them through the affine machinery before giving up on a range. *)
let const_of e =
  match Affine.of_expr ~is_index:(fun _ -> false) e with
  | Some f when Affine.is_const f -> Some f.Affine.const
  | _ -> None

let fold_range (l : Ast.loop) =
  match Loop_class.const_range l with
  | Some r -> Some r
  | None -> (
      match (const_of l.Ast.lo, const_of l.Ast.hi) with
      | Some lo, Some hi -> Some (lo, hi)
      | _ -> None)

let try_qnf ~hints (loops : Ast.loop list) (inner_body : Ast.block) =
  match loops with
  | [ l ] when const_of l.Ast.lo = Some 1 && const_of l.Ast.step = Some 1 -> (
      match const_of l.Ast.hi with
      | Some trip when trip >= 1 -> (
          let j = l.Ast.index in
          let prefix, rest = recovery_prefix ~j inner_body in
          let non_affine (_, e) =
            Affine.of_expr ~is_index:(fun v -> String.equal v j) e = None
          in
          if prefix = [] || not (List.exists non_affine prefix) then Plain
          else
            (* A recovered name rewritten or shadowed later in the body
               would make the pseudo-index substitution unsound. *)
            let later_writes = Usedef.scalar_writes rest in
            let later_bound = Ast.bound_indices_block rest in
            if
              List.exists
                (fun (v, _) ->
                  Vset.mem v later_writes || List.mem v later_bound)
                prefix
              || Vset.mem j later_writes
            then Unrecognized
            else
              let accept n q =
                let leftover =
                  List.map
                    (fun (v, e) -> Ast.Assign (Ast.Scalar v, e))
                    (drop n prefix)
                in
                Recovered (q, leftover @ rest)
              in
              let hinted =
                List.find_map
                  (fun h ->
                    if not (String.equal h.h_coalesced j) then None
                    else
                      let n = List.length h.h_digits in
                      let defs = take n prefix in
                      if List.length defs < n then None
                      else
                        match
                          Qnf.verify_hint ~coalesced:j ~trip
                            ~sizes:h.h_digits defs
                        with
                        | Ok q -> Some (accept n q)
                        | Error _ -> None)
                  hints
              in
              let rec search n =
                if n < 1 then Unrecognized
                else
                  match Qnf.decompose ~coalesced:j ~trip (take n prefix) with
                  | Ok q -> accept n q
                  | Error _ -> search (n - 1)
              in
              (match hinted with
              | Some r -> r
              | None -> search (List.length prefix)))
      | _ -> Plain)
  | _ -> Plain

(* ---------- per-region analysis ---------- *)

type level = { lv_var : Ast.var; lv_range : (int * int) option }

(* ---------- strip-mined serial loop recognition ----------

   Tiling, chunked coalescing and parallel reductions all emit the same
   shape inside a region body: a serial loop

     do d = c*v + b, min(c*v + b', H)   with b' <= b + c - 1

   over a region level [v] — each level iteration walks one width-<=c
   block of a larger space, and distinct [v] walk disjoint blocks. The
   analysis would otherwise see [d] as an opaque inner index with no
   range and report a may-dependence carried by [v]. Recognition is the
   exact dual of the Qnf recovery substitution: rewrite [d] in every
   subscript as [c*v + (b-1) + r] with a fresh remainder pseudo-variable
   [r in 1..c], after which the Banerjee interval for the [v]-carried
   query spans at most [b' - b - c .. -1] (for v < v') and the
   dependence is disproven. The substitution is information-preserving:
   it is sound for every coupling at every level, not just [v]'s. *)

type strip = {
  st_d : Ast.var;  (** the serial strip index *)
  st_v : Ast.var;  (** the region level it is mined from *)
  st_c : int;  (** block stride (= max width) *)
  st_b : int;  (** block base offset: d starts at c*v + b *)
  st_r : Ast.var;  (** fresh remainder pseudo-variable, 1..c *)
}

(* [e] as [c*v + b] for a single variable [v] drawn from [names]. *)
let single_level_affine ~names e =
  match Affine.of_expr ~is_index:(fun _ -> true) e with
  | Some { Affine.coeffs = [ (v, c) ]; const = b }
    when c >= 1 && List.mem v names ->
      Some (v, c, b)
  | _ -> None

let strip_shape ~level_names (l : Ast.loop) =
  if const_of l.Ast.step <> Some 1 then None
  else
    match single_level_affine ~names:level_names l.Ast.lo with
    | None -> None
    | Some (v, c, b) ->
        let qualifies e =
          match single_level_affine ~names:[ v ] e with
          | Some (_, c', b') -> c' = c && b' <= b + c - 1
          | None -> false
        in
        let hi_ok =
          match l.Ast.hi with
          | Ast.Bin (Ast.Min, e1, e2) -> qualifies e1 || qualifies e2
          | e -> qualifies e
        in
        if hi_ok then Some (v, c, b) else None

(* Does [d] occur (as a variable in any expression, or as a binder)
   anywhere in [b] outside the physical subtree [inside]? *)
let occurs_outside d ~inside (b : Ast.block) =
  let in_expr e = List.mem d (Ast.expr_vars e) in
  let rec in_cond (c : Ast.cond) =
    match c with
    | Ast.True -> false
    | Ast.Cmp (_, a, b) -> in_expr a || in_expr b
    | Ast.And (a, b) | Ast.Or (a, b) -> in_cond a || in_cond b
    | Ast.Not a -> in_cond a
  in
  let rec stmt (s : Ast.stmt) =
    match s with
    | _ when s == inside -> false
    | Ast.Assign (lv, e) ->
        in_expr e
        || (match lv with
           | Ast.Scalar v -> String.equal v d
           | Ast.Elem (_, subs) -> List.exists in_expr subs)
    | Ast.If (c, t, f) -> in_cond c || block t || block f
    | Ast.For l ->
        String.equal l.Ast.index d
        || in_expr l.Ast.lo || in_expr l.Ast.hi || in_expr l.Ast.step
        || block l.Ast.body
  and block b = List.exists stmt b in
  block b

let find_strips ~level_names (body : Ast.block) =
  let candidates = ref [] in
  let rec stmt (s : Ast.stmt) =
    (match s with
    | Ast.For l when not (List.mem l.Ast.index level_names) -> (
        match strip_shape ~level_names l with
        | Some (v, c, b) -> candidates := (l.Ast.index, v, c, b, s) :: !candidates
        | None -> ())
    | _ -> ());
    match s with
    | Ast.Assign _ -> ()
    | Ast.If (_, t, f) ->
        List.iter stmt t;
        List.iter stmt f
    | Ast.For l -> List.iter stmt l.Ast.body
  in
  List.iter stmt body;
  let writes = Usedef.scalar_writes body in
  !candidates
  |> List.filter (fun (d, _, _, _, subtree) ->
         (* Exactly one binder for [d], never written as a scalar, and no
            use of [d] escapes its own loop: then every subscript
            occurrence of [d] is governed by this strip. *)
         List.length
           (List.filter (fun (d', _, _, _, _) -> String.equal d d')
              !candidates)
         = 1
         && (not (Vset.mem d writes))
         && not (occurs_outside d ~inside:subtree body))
  |> List.map (fun (d, v, c, b, _) ->
         { st_d = d; st_v = v; st_c = c; st_b = b; st_r = d ^ "#r" })

let iter_count (l : Ast.loop) =
  match (const_of l.Ast.lo, const_of l.Ast.hi, const_of l.Ast.step) with
  | Some lo, Some hi, Some step when step >= 1 ->
      Some (max 0 (((hi - lo) / step) + 1))
  | _ -> None

let opt_product xs =
  List.fold_left
    (fun acc x ->
      match (acc, x) with Some a, Some b -> Some (a * b) | _ -> None)
    (Some 1) xs

let subs_to_string subs =
  "[" ^ String.concat ", " (List.map Pretty.expr_to_string subs) ^ "]"

let analyze_region ~hints ordinal ((loops : Ast.loop list), inner_body) =
  let rev_diags = ref [] in
  let emit code subject msg =
    let severity = Option.get (Diag.severity_of_code code) in
    rev_diags :=
      Diag.make ~code ~severity ~region:ordinal ~subject msg :: !rev_diags
  in
  let loop_names = List.map (fun (l : Ast.loop) -> l.Ast.index) loops in
  let label = "doall " ^ String.concat "." loop_names in
  let qnf = try_qnf ~hints loops inner_body in
  let levels, analyzed, iterations =
    match qnf with
    | Recovered (q, analyzed) ->
        emit "LC007" q.Qnf.q_coalesced
          (Printf.sprintf "recovery recognized: %s"
             (String.concat ", "
                (List.map
                   (fun (d : Qnf.digit) ->
                     let lo, hi = Qnf.digit_range d in
                     Printf.sprintf "%s in %d..%d stride %d" d.Qnf.d_var lo
                       hi d.Qnf.d_stride)
                   q.Qnf.q_digits)));
        ( List.map
            (fun (d : Qnf.digit) ->
              { lv_var = d.Qnf.d_var; lv_range = Some (Qnf.digit_range d) })
            q.Qnf.q_digits,
          analyzed,
          Some q.Qnf.q_trip )
    | Unrecognized | Plain ->
        if qnf = Unrecognized then
          emit "LC005"
            (List.hd loop_names)
            "index-recovery arithmetic not recognized; recovered scalars \
             treated as opaque";
        ( List.map
            (fun (l : Ast.loop) ->
              { lv_var = l.Ast.index; lv_range = fold_range l })
            loops,
          inner_body,
          opt_product (List.map iter_count loops) )
  in
  let level_names = List.map (fun lv -> lv.lv_var) levels in
  let writes = Usedef.scalar_writes analyzed in
  let bound_inside = Ast.bound_indices_block analyzed in
  let shadowed =
    List.filter
      (fun v -> Vset.mem v writes || List.mem v bound_inside)
      level_names
  in
  if shadowed <> [] then
    List.iter
      (fun v ->
        emit "LC009" v "parallel index shadowed or reassigned in the region")
      shadowed
  else begin
    (* Scalars: written ones must be privatizable (the runtime gives every
       domain a private copy) or a recognized reduction (merged in domain
       order); anything else is a cross-iteration conflict. *)
    let privatizable = Privatize.privatizable analyzed in
    let reductions =
      Reduction.detect analyzed
      |> List.filter (fun (r : Reduction.t) ->
             not (List.mem r.Reduction.scalar level_names))
    in
    let red_names = List.map (fun (r : Reduction.t) -> r.Reduction.scalar) reductions in
    Vset.iter
      (fun v ->
        if List.mem v red_names then
          let op =
            match
              (List.find
                 (fun (r : Reduction.t) -> String.equal r.Reduction.scalar v)
                 reductions)
                .Reduction.op
            with
            | Reduction.Sum -> "sum"
            | Reduction.Product -> "product"
          in
          emit "LC008" v
            (Printf.sprintf
               "recognized %s reduction; the runtime merges per-domain \
                partials in domain order"
               op)
        else if not (Vset.mem v privatizable) then
          emit "LC003" v
            "scalar written in the parallel region is neither privatizable \
             nor a recognized reduction")
      writes;
    (* Arrays: every read/write and write/write pair across distinct
       iterations of the (coalesced) index space. *)
    let subst_sub =
      match qnf with
      | Recovered (q, _) ->
          let lin = Qnf.linear_of_coalesced q in
          fun e ->
            if List.mem q.Qnf.q_coalesced (Ast.expr_vars e) then
              Ast.subst_expr q.Qnf.q_coalesced lin e
            else e
      | Plain | Unrecognized -> fun e -> e
    in
    let strips = find_strips ~level_names analyzed in
    let strip_rem = Hashtbl.create 4 in
    List.iter
      (fun st ->
        Hashtbl.replace strip_rem st.st_r st.st_c;
        emit "LC015" st.st_d
          (Printf.sprintf
             "strip-mined serial loop recognized: %s = %d*%s %c %d + (r in \
              1..%d)"
             st.st_d st.st_c st.st_v
             (if st.st_b - 1 < 0 then '-' else '+')
             (abs (st.st_b - 1))
             st.st_c))
      strips;
    let subst_strips e =
      List.fold_left
        (fun e st ->
          if List.mem st.st_d (Ast.expr_vars e) then
            (* d = c*v + (b-1) + r, with r the 1-based block offset. *)
            Ast.subst_expr st.st_d
              (Ast.Bin
                 ( Ast.Add,
                   Bin
                     ( Ast.Add,
                       Bin (Ast.Mul, Int st.st_c, Var st.st_v),
                       Int (st.st_b - 1) ),
                   Var st.st_r ))
              e
          else e)
        e strips
    in
    let refs =
      List.map
        (fun (r : Usedef.array_ref) ->
          {
            r with
            Usedef.subs = List.map (fun s -> subst_strips (subst_sub s)) r.Usedef.subs;
          })
        (Usedef.array_refs analyzed)
    in
    let inner_tbl = Loop_class.inner_ranges analyzed in
    let is_affine_ref (r : Usedef.array_ref) =
      List.for_all
        (fun s -> Affine.of_expr ~is_index:(fun _ -> true) s <> None)
        r.Usedef.subs
    in
    let non_affine_arrays =
      refs
      |> List.filter (fun r -> not (is_affine_ref r))
      |> List.map (fun (r : Usedef.array_ref) -> r.Usedef.arr)
      |> List.sort_uniq String.compare
    in
    List.iter
      (fun a -> emit "LC004" a "non-affine subscript; reference not analysed")
      non_affine_arrays;
    let good = Array.of_list (List.filter is_affine_ref refs) in
    let level_pos v =
      let rec go i = function
        | [] -> None
        | w :: _ when String.equal v w -> Some i
        | _ :: rest -> go (i + 1) rest
      in
      go 0 level_names
    in
    let range_of v =
      match level_pos v with
      | Some p -> (List.nth levels p).lv_range
      | None -> (
          match Hashtbl.find_opt strip_rem v with
          | Some c -> Some (1, c)
          | None ->
              if Vset.mem v writes then None
              else Option.join (Hashtbl.find_opt inner_tbl v))
    in
    let classify_rest ~k v =
      match level_pos v with
      | Some p -> Depend.Coupled (if p < k then Depend.Ceq else Depend.Cany)
      | None ->
          if
            Hashtbl.mem strip_rem v
            || Vset.mem v writes
            || Hashtbl.mem inner_tbl v
          then Depend.Private1
          else Depend.Shared
    in
    let carried_level subs1 subs2 =
      let rec go k = function
        | [] -> None
        | lv :: rest ->
            if
              Depend.carried ~level:lv.lv_var ~range:lv.lv_range
                ~classify_rest:(classify_rest ~k) ~range_of subs1 subs2
            then Some lv.lv_var
            else go (k + 1) rest
      in
      go 0 levels
    in
    let n = Array.length good in
    let pairs = ref 0 in
    for i = 0 to n - 1 do
      for j = i to n - 1 do
        let r1 = good.(i) and r2 = good.(j) in
        if
          String.equal r1.Usedef.arr r2.Usedef.arr
          && (r1.Usedef.write || r2.Usedef.write)
        then begin
          incr pairs;
          match carried_level r1.Usedef.subs r2.Usedef.subs with
          | Some lvl ->
              let code =
                if r1.Usedef.write && r2.Usedef.write then "LC001" else "LC002"
              in
              let kind (r : Usedef.array_ref) =
                if r.Usedef.write then "write" else "read"
              in
              emit code r1.Usedef.arr
                (Printf.sprintf
                   "%s%s (%s) and %s%s (%s) can touch the same element in \
                    distinct iterations (carried by %s)"
                   r1.Usedef.arr
                   (subs_to_string r1.Usedef.subs)
                   (kind r1) r2.Usedef.arr
                   (subs_to_string r2.Usedef.subs)
                   (kind r2) lvl)
          | None -> ()
        end
      done
    done;
    let e, w, _ = Diag.counts !rev_diags in
    if e = 0 && w = 0 then
      emit "LC006" ""
        (Printf.sprintf "proven race-free (%d reference pair(s) checked)"
           !pairs)
  end;
  let diags = List.rev !rev_diags in
  let verdict =
    match Diag.worst diags with
    | Some Diag.Error -> Racy
    | Some Diag.Warning -> Unverified
    | Some Diag.Info | None -> Race_free
  in
  { ordinal; indices = level_names; label; iterations; verdict; diags }

(* ---------- whole program ---------- *)

let h_check_ns = Loopcoal_obs.Registry.histogram "verify.check_ns"

let check_program ?(hints = []) (p : Ast.program) =
  Loopcoal_obs.Registry.time h_check_ns @@ fun () ->
  let raw = List.rev (regions_of_block ~in_par:false [] p.body) in
  let regions = List.mapi (fun i rg -> analyze_region ~hints (i + 1) rg) raw in
  { regions; diags = List.concat_map (fun (r : region) -> r.diags) regions }

let report ?(target = "<program>") res =
  {
    Diag.target;
    regions =
      List.map
        (fun r ->
          {
            Diag.ri_ordinal = r.ordinal;
            ri_label = r.label;
            ri_iters = r.iterations;
          })
        res.regions;
    diags = res.diags;
  }

let race_free res =
  List.for_all (fun r -> r.verdict = Race_free) res.regions

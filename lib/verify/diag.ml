type severity = Info | Warning | Error

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

type t = {
  code : string;
  severity : severity;
  region : int;
  subject : string;
  message : string;
}

let make ~code ~severity ~region ~subject message =
  { code; severity; region; subject; message }

(* The catalog is the CLI contract: codes are stable, severities fixed.
   Adding a code means documenting it in docs/VERIFY.md. *)
let catalog =
  [
    ("LC001", Error, "write/write race on an array between distinct iterations");
    ("LC002", Error, "read/write race on an array between distinct iterations");
    ( "LC003",
      Error,
      "scalar written in a parallel region is neither privatizable nor a \
       recognized reduction" );
    ("LC004", Warning, "subscript is not affine; reference cannot be analysed");
    ( "LC005",
      Warning,
      "division/modulus of the parallel index is not a recognized \
       index-recovery form" );
    ("LC006", Info, "parallel region proven race-free");
    ( "LC007",
      Info,
      "coalesced-index recovery recognized as a mixed-radix decomposition" );
    ("LC008", Info, "recognized reduction, merged by the runtime");
    ( "LC009",
      Warning,
      "parallel index shadowed or reassigned inside the region; analysis \
       skipped" );
    ( "LC010",
      Error,
      "tape reads a register with no prior definition on some path" );
    ( "LC011",
      Error,
      "malformed tape instruction: register-file or access-id bounds, jump \
       shape, or stream-slot protocol violated" );
    ( "LC012",
      Error,
      "access offset form inconsistent or not covered by the once-per-fork \
       range check" );
    ("LC013", Error, "tape provenance incomplete: instruction without a source tag");
    ( "LC014",
      Error,
      "optimized tape's per-array read/write footprint differs from the \
       unoptimized tape's" );
    ( "LC015",
      Info,
      "strip-mined serial loop recognized: subscripts rewritten over a \
       bounded block remainder" );
  ]

let severity_of_code c =
  match List.find_opt (fun (c', _, _) -> String.equal c c') catalog with
  | Some (_, s, _) -> Some s
  | None -> None

let counts diags =
  List.fold_left
    (fun (e, w, i) d ->
      match d.severity with
      | Error -> (e + 1, w, i)
      | Warning -> (e, w + 1, i)
      | Info -> (e, w, i + 1))
    (0, 0, 0) diags

let worst diags =
  List.fold_left
    (fun acc d ->
      match (acc, d.severity) with
      | Some Error, _ | _, Error -> Some Error
      | Some Warning, _ | _, Warning -> Some Warning
      | _ -> Some Info)
    None diags

(* ---------- reports ---------- *)

type region_info = { ri_ordinal : int; ri_label : string; ri_iters : int option }

type report = { target : string; regions : region_info list; diags : t list }

let render_text r =
  let buf = Buffer.create 256 in
  let outf fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  outf "%s: checked %d parallel region(s)" r.target (List.length r.regions);
  List.iter
    (fun ri ->
      let iters =
        match ri.ri_iters with
        | Some n -> Printf.sprintf ", %d iterations" n
        | None -> ""
      in
      outf "region %d (%s%s):" ri.ri_ordinal ri.ri_label iters;
      List.iter
        (fun d ->
          if d.region = ri.ri_ordinal then
            let subj = if d.subject = "" then "" else d.subject ^ ": " in
            outf "  %s %s: %s%s" d.code (severity_to_string d.severity) subj
              d.message)
        r.diags)
    r.regions;
  List.iter
    (fun d ->
      if d.region = 0 then
        let subj = if d.subject = "" then "" else d.subject ^ ": " in
        outf "%s %s: %s%s" d.code (severity_to_string d.severity) subj d.message)
    r.diags;
  let e, w, _ = counts r.diags in
  outf "summary: %d region(s), %d error(s), %d warning(s)"
    (List.length r.regions) e w;
  Buffer.contents buf

(* Hand-rolled JSON with a fixed key order: the golden tests pin the
   exact bytes, so no dependency on a JSON library (none is vendored). *)
let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_json r =
  let buf = Buffer.create 512 in
  let out s = Buffer.add_string buf s in
  let outf fmt = Printf.ksprintf out fmt in
  out "{\n";
  outf "  \"target\": \"%s\",\n" (json_escape r.target);
  out "  \"regions\": [";
  List.iteri
    (fun i ri ->
      if i > 0 then out ",";
      out "\n    ";
      outf "{ \"ordinal\": %d, \"label\": \"%s\", \"iterations\": %s }"
        ri.ri_ordinal (json_escape ri.ri_label)
        (match ri.ri_iters with Some n -> string_of_int n | None -> "null"))
    r.regions;
  if r.regions <> [] then out "\n  ";
  out "],\n";
  out "  \"diagnostics\": [";
  List.iteri
    (fun i d ->
      if i > 0 then out ",";
      out "\n    ";
      outf
        "{ \"code\": \"%s\", \"severity\": \"%s\", \"region\": %d, \
         \"subject\": \"%s\", \"message\": \"%s\" }"
        (json_escape d.code)
        (severity_to_string d.severity)
        d.region (json_escape d.subject) (json_escape d.message))
    r.diags;
  if r.diags <> [] then out "\n  ";
  out "],\n";
  let e, w, i = counts r.diags in
  outf
    "  \"summary\": { \"regions\": %d, \"errors\": %d, \"warnings\": %d, \
     \"infos\": %d }\n"
    (List.length r.regions) e w i;
  out "}\n";
  Buffer.contents buf

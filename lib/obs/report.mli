(** Human- and machine-facing renderings of a trace.

    The measured Gantt uses the same span renderer as the event
    simulator's predicted one ({!Loopcoal_machine.Gantt.render_spans}),
    so {!side_by_side} can place prediction and measurement in one
    visual frame. *)

val metrics_table : Metrics.t -> Loopcoal_util.Table.t
(** One row per fork-join region: policy, n, chunks dispatched, sync
    ops/iteration, imbalance, wall time, fork and join latency. *)

val worker_table : Metrics.fork_metrics -> Loopcoal_util.Table.t
(** One row per worker of a region: chunks, busy, idle, dispatch wait. *)

val measured_gantt : ?width:int -> Trace.t -> epoch:int -> string
(** ASCII Gantt of one fork-join region, one row per worker, time in
    microseconds from the fork. Raises [Invalid_argument] on an unknown
    epoch or a region with no chunks. *)

val side_by_side : ?gap:string -> string -> string -> string
(** [side_by_side left right] joins two multi-line blocks horizontally,
    padding the left block to its widest line. *)

val time_line :
  engine:string -> domains:int -> policy:string -> wall_s:float -> string
(** The stable machine-readable timing line emitted by [loopc run
    --time]: [time engine=<e> domains=<d> policy=<p> wall_s=<seconds>].
    Keys are fixed, space-separated, values contain no spaces; [wall_s]
    uses six decimal places. Covered by a format test — change it and
    the test together, it is parsed by scripts and CI. *)

val time_suffix :
  ?extra:(string * string) list -> opt:int -> plan_cache:string -> unit -> string
(** The contract for extending {!time_line}: extra fields ride in a
    suffix, [" opt=<level> plan_cache=<hit|miss|off>"] followed by any
    [extra] [key=value] pairs in order. New fields must only ever be
    appended here — parsers key on the {!time_line} prefix and ignore
    unknown trailing fields, so the line grows without breaking them. *)

(** Process-wide observability counters.

    Currently: plan-cache hit/miss totals, bumped by the runtime's
    compile path whenever a cache is consulted (one event per
    [Compile.compile] call, not per plan) and surfaced by [loopc run
    --time]. Atomic, so concurrent compiles from multiple domains count
    correctly. *)

val plan_cache_hit : unit -> unit
val plan_cache_miss : unit -> unit

val plan_cache_stats : unit -> int * int
(** [(hits, misses)] since start or last {!reset}. *)

val reset : unit -> unit
(** Zero all counters (tests). *)

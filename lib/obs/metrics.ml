module Policy = Loopcoal_sched.Policy
module Chunks = Loopcoal_sched.Chunks

type fork_metrics = {
  epoch : int;
  policy : Policy.t;
  n : int;
  p : int;
  chunks_dispatched : int;
  chunks_per_worker : int array;
  iterations : int;
  wall_ns : int;
  busy_ns : int array;
  idle_ns : int array;
  imbalance : float;
  sync_ops : int;
  sync_ops_per_iter : float;
  fork_latency_ns : int;
  join_latency_ns : int;
  dispatch_wait_ns : int array;
}

type t = {
  forks : fork_metrics list;
  total_chunks : int;
  total_iters : int;
  total_wall_ns : int;
  total_sync_ops : int;
  imbalance : float;
}

let chunks_of_epoch (tr : Trace.t) epoch =
  Array.to_list tr.Trace.chunks
  |> List.filter (fun c -> c.Trace.epoch = epoch)

let fork_metrics_of (tr : Trace.t) (f : Trace.fork) =
  let chunks = chunks_of_epoch tr f.Trace.f_epoch in
  let p = f.Trace.f_p in
  let busy = Array.make p 0 in
  let per_worker = Array.make p 0 in
  let last_end = Array.make p f.Trace.f_t0 in
  let iterations = ref 0 in
  let first_start = ref max_int in
  let latest_end = ref f.Trace.f_t0 in
  List.iter
    (fun (c : Trace.chunk) ->
      let w = c.Trace.worker in
      if w < p then begin
        busy.(w) <- busy.(w) + (c.Trace.t1 - c.Trace.t0);
        per_worker.(w) <- per_worker.(w) + 1;
        if c.Trace.t1 > last_end.(w) then last_end.(w) <- c.Trace.t1
      end;
      iterations := !iterations + c.Trace.len;
      if c.Trace.t0 < !first_start then first_start := c.Trace.t0;
      if c.Trace.t1 > !latest_end then latest_end := c.Trace.t1)
    chunks;
  let wall_ns = f.Trace.f_t1 - f.Trace.f_t0 in
  let idle = Array.map (fun b -> max 0 (wall_ns - b)) busy in
  let dispatch_wait =
    Array.init p (fun w -> max 0 (last_end.(w) - f.Trace.f_t0 - busy.(w)))
  in
  let max_busy = Array.fold_left max 0 busy in
  let mean_busy =
    float_of_int (Array.fold_left ( + ) 0 busy) /. float_of_int (max 1 p)
  in
  let imbalance =
    if mean_busy <= 0.0 then 1.0 else float_of_int max_busy /. mean_busy
  in
  let sync_ops = Chunks.sync_ops f.Trace.f_policy ~n:f.Trace.f_n ~p in
  {
    epoch = f.Trace.f_epoch;
    policy = f.Trace.f_policy;
    n = f.Trace.f_n;
    p;
    chunks_dispatched = List.length chunks;
    chunks_per_worker = per_worker;
    iterations = !iterations;
    wall_ns;
    busy_ns = busy;
    idle_ns = idle;
    imbalance;
    sync_ops;
    sync_ops_per_iter =
      (if f.Trace.f_n = 0 then 0.0
       else float_of_int sync_ops /. float_of_int f.Trace.f_n);
    fork_latency_ns =
      (if !first_start = max_int then wall_ns
       else max 0 (!first_start - f.Trace.f_t0));
    join_latency_ns = max 0 (f.Trace.f_t1 - !latest_end);
    dispatch_wait_ns = dispatch_wait;
  }

let of_trace (tr : Trace.t) =
  let forks = Array.to_list tr.Trace.forks |> List.map (fork_metrics_of tr) in
  let sum f = List.fold_left (fun acc m -> acc + f m) 0 forks in
  let imbalance =
    match
      List.fold_left
        (fun best m ->
          match best with
          | Some b when b.iterations >= m.iterations -> best
          | _ -> Some m)
        None forks
    with
    | Some m -> m.imbalance
    | None -> 1.0
  in
  {
    forks;
    total_chunks = sum (fun m -> m.chunks_dispatched);
    total_iters = sum (fun m -> m.iterations);
    total_wall_ns = sum (fun m -> m.wall_ns);
    total_sync_ops = sum (fun m -> m.sync_ops);
    imbalance;
  }

let check_partition (tr : Trace.t) =
  let check_fork (f : Trace.fork) =
    let chunks =
      chunks_of_epoch tr f.Trace.f_epoch
      |> List.sort (fun (a : Trace.chunk) b -> compare a.Trace.start b.Trace.start)
    in
    let rec walk expected = function
      | [] ->
          if expected = f.Trace.f_n + 1 then Ok ()
          else
            Error
              (Printf.sprintf
                 "epoch %d (%s, n=%d): chunks stop at iteration %d"
                 f.Trace.f_epoch
                 (Policy.name f.Trace.f_policy)
                 f.Trace.f_n (expected - 1))
      | (c : Trace.chunk) :: rest ->
          if c.Trace.len <= 0 then
            Error
              (Printf.sprintf "epoch %d: chunk at %d has length %d"
                 f.Trace.f_epoch c.Trace.start c.Trace.len)
          else if c.Trace.start < expected then
            Error
              (Printf.sprintf
                 "epoch %d: chunk at %d overlaps (expected start %d)"
                 f.Trace.f_epoch c.Trace.start expected)
          else if c.Trace.start > expected then
            Error
              (Printf.sprintf
                 "epoch %d: gap before chunk at %d (expected start %d)"
                 f.Trace.f_epoch c.Trace.start expected)
          else walk (expected + c.Trace.len) rest
    in
    walk 1 chunks
  in
  Array.to_list tr.Trace.forks
  |> List.fold_left
       (fun acc f -> match acc with Error _ -> acc | Ok () -> check_fork f)
       (Ok ())

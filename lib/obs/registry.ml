(* Process-wide metrics registry.

   One global, mutex-protected table of named metrics. Handles are
   looked up (or created) once, at producer-module initialization; the
   hot operations — [incr], [add], [observe] — touch only the handle's
   own atomics, never the table or the lock, so producers on any domain
   record concurrently without coordination.

   Three metric kinds:
   - counters: monotone [int Atomic.t], for event totals;
   - gauges: last-write-wins [float], for levels;
   - histograms: log2-bucketed value distributions. [observe v] bumps
     bucket [bits v] (0 for v <= 0, else the value's bit length), so
     bucket b >= 1 covers [2^(b-1), 2^b). Percentiles walk the
     cumulative counts and report the matched bucket's lower bound —
     a <= 2x underestimate by construction, which is the right trade
     for nanosecond timings spanning six orders of magnitude.

   Naming scheme: dot-separated [component.event[_unit]], e.g.
   [plan_cache.hit], [tapeopt.gvn.ns]. The registry renders and dumps
   metrics sorted by name, so output order is stable regardless of
   module initialization order. *)

type counter = { c_v : int Atomic.t }
type gauge = { g_v : float Atomic.t }

type histogram = {
  h_buckets : int Atomic.t array;  (** length [nbuckets] *)
  h_sum : int Atomic.t;
  h_max : int Atomic.t;
}

type metric = Mcounter of counter | Mgauge of gauge | Mhist of histogram

let nbuckets = 64
let table : (string, metric) Hashtbl.t = Hashtbl.create 64
let lock = Mutex.create ()

let register name make cast =
  Mutex.lock lock;
  let m =
    match Hashtbl.find_opt table name with
    | Some m -> m
    | None ->
        let m = make () in
        Hashtbl.replace table name m;
        m
  in
  Mutex.unlock lock;
  match cast m with
  | Some h -> h
  | None -> invalid_arg ("Registry: metric kind mismatch for " ^ name)

let counter name =
  register name
    (fun () -> Mcounter { c_v = Atomic.make 0 })
    (function Mcounter c -> Some c | _ -> None)

let gauge name =
  register name
    (fun () -> Mgauge { g_v = Atomic.make 0.0 })
    (function Mgauge g -> Some g | _ -> None)

let histogram name =
  register name
    (fun () ->
      Mhist
        {
          h_buckets = Array.init nbuckets (fun _ -> Atomic.make 0);
          h_sum = Atomic.make 0;
          h_max = Atomic.make 0;
        })
    (function Mhist h -> Some h | _ -> None)

let incr c = Atomic.incr c.c_v

let add c n =
  ignore (Atomic.fetch_and_add c.c_v n : int)

let value c = Atomic.get c.c_v
let set g v = Atomic.set g.g_v v
let get g = Atomic.get g.g_v

(* Bit length: bits 0 = 0, bits 1 = 1, bits [2,3] = 2, ... *)
let bits v =
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
  go 0 v

let bucket_of v = if v <= 0 then 0 else min (bits v) (nbuckets - 1)
let bucket_floor b = if b = 0 then 0 else 1 lsl (b - 1)

let rec atomic_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then atomic_max a v

let observe h v =
  Atomic.incr h.h_buckets.(bucket_of v);
  ignore (Atomic.fetch_and_add h.h_sum v : int);
  atomic_max h.h_max v

let now_ns = Trace.now

let time h f =
  let t0 = now_ns () in
  let finally () = observe h (now_ns () - t0) in
  Fun.protect ~finally f

type hstat = { count : int; sum : int; p50 : int; p90 : int; p99 : int; max_v : int }

let hist_count h =
  let n = ref 0 in
  Array.iter (fun b -> n := !n + Atomic.get b) h.h_buckets;
  !n

let percentile h q =
  let total = hist_count h in
  if total = 0 then 0
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int total))) in
    let acc = ref 0 and res = ref 0 and found = ref false in
    Array.iteri
      (fun b c ->
        if not !found then begin
          acc := !acc + Atomic.get c;
          if !acc >= rank then begin
            res := bucket_floor b;
            found := true
          end
        end)
      h.h_buckets;
    !res
  end

let hstats h =
  {
    count = hist_count h;
    sum = Atomic.get h.h_sum;
    p50 = percentile h 0.50;
    p90 = percentile h 0.90;
    p99 = percentile h 0.99;
    max_v = Atomic.get h.h_max;
  }

type stat = Counter_v of int | Gauge_v of float | Hist_v of hstat

let snapshot () =
  Mutex.lock lock;
  let all = Hashtbl.fold (fun name m acc -> (name, m) :: acc) table [] in
  Mutex.unlock lock;
  List.sort (fun (a, _) (b, _) -> String.compare a b) all
  |> List.map (fun (name, m) ->
         ( name,
           match m with
           | Mcounter c -> Counter_v (value c)
           | Mgauge g -> Gauge_v (get g)
           | Mhist h -> Hist_v (hstats h) ))

let render () =
  let b = Buffer.create 256 in
  List.iter
    (fun (name, s) ->
      match s with
      | Counter_v v -> Buffer.add_string b (Printf.sprintf "counter %-32s %d\n" name v)
      | Gauge_v v -> Buffer.add_string b (Printf.sprintf "gauge   %-32s %g\n" name v)
      | Hist_v h ->
          Buffer.add_string b
            (Printf.sprintf
               "hist    %-32s count=%d sum=%d p50=%d p90=%d p99=%d max=%d\n" name
               h.count h.sum h.p50 h.p90 h.p99 h.max_v))
    (snapshot ());
  Buffer.contents b

(* Metric names are code-controlled ([a-z0-9._]); escape defensively
   anyway so the dump is always valid JSON. *)
let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json () =
  let b = Buffer.create 512 in
  Buffer.add_string b "{";
  List.iteri
    (fun i (name, s) ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b (Printf.sprintf "\n  \"%s\": " (json_escape name));
      (match s with
      | Counter_v v ->
          Buffer.add_string b
            (Printf.sprintf "{\"type\": \"counter\", \"value\": %d}" v)
      | Gauge_v v ->
          Buffer.add_string b
            (Printf.sprintf "{\"type\": \"gauge\", \"value\": %.17g}" v)
      | Hist_v h ->
          Buffer.add_string b
            (Printf.sprintf
               "{\"type\": \"histogram\", \"count\": %d, \"sum\": %d, \"p50\": \
                %d, \"p90\": %d, \"p99\": %d, \"max\": %d}"
               h.count h.sum h.p50 h.p90 h.p99 h.max_v)))
    (snapshot ());
  Buffer.add_string b "\n}\n";
  Buffer.contents b

let reset () =
  Mutex.lock lock;
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Mcounter c -> Atomic.set c.c_v 0
      | Mgauge g -> Atomic.set g.g_v 0.0
      | Mhist h ->
          Array.iter (fun b -> Atomic.set b 0) h.h_buckets;
          Atomic.set h.h_sum 0;
          Atomic.set h.h_max 0)
    table;
  Mutex.unlock lock

module Policy = Loopcoal_sched.Policy

(* Timestamps: trace_event wants microseconds; keep them relative to the
   first fork so the viewer opens at t=0. *)
let us_of origin t_ns = float_of_int (t_ns - origin) /. 1e3

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_buffer ?(profile = []) buf (tr : Trace.t) =
  let origin =
    if Array.length tr.Trace.forks = 0 then 0
    else
      Array.fold_left
        (fun acc (f : Trace.fork) -> min acc f.Trace.f_t0)
        max_int tr.Trace.forks
  in
  let events = ref [] in
  let emit e = events := e :: !events in
  emit
    (Printf.sprintf
       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
        \"args\":{\"name\":\"loopcoal runtime\"}}");
  for w = 0 to tr.Trace.p - 1 do
    emit
      (Printf.sprintf
         "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\
          \"args\":{\"name\":\"domain %d\"}}"
         w w)
  done;
  emit
    (Printf.sprintf
       "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\
        \"args\":{\"name\":\"fork-join\"}}"
       tr.Trace.p);
  Array.iter
    (fun (f : Trace.fork) ->
      emit
        (Printf.sprintf
           "{\"name\":\"%s n=%d\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\
            \"pid\":0,\"tid\":%d,\"args\":{\"epoch\":%d,\"policy\":\"%s\",\
            \"n\":%d,\"p\":%d}}"
           (escape (Policy.name f.Trace.f_policy))
           f.Trace.f_n (us_of origin f.Trace.f_t0)
           (us_of f.Trace.f_t0 f.Trace.f_t1)
           tr.Trace.p f.Trace.f_epoch
           (escape (Policy.name f.Trace.f_policy))
           f.Trace.f_n f.Trace.f_p))
    tr.Trace.forks;
  Array.iter
    (fun (c : Trace.chunk) ->
      emit
        (Printf.sprintf
           "{\"name\":\"chunk [%d,%d]\",\"ph\":\"X\",\"ts\":%.3f,\
            \"dur\":%.3f,\"pid\":0,\"tid\":%d,\"args\":{\"epoch\":%d,\
            \"start\":%d,\"len\":%d}}"
           c.Trace.start
           (c.Trace.start + c.Trace.len - 1)
           (us_of origin c.Trace.t0) (us_of c.Trace.t0 c.Trace.t1)
           c.Trace.worker c.Trace.epoch c.Trace.start c.Trace.len))
    tr.Trace.chunks;
  (* Profiler track: one row below the fork-join lane, one span per hot
     loop starting at t=0 with duration proportional to its dispatch
     share of the traced wall span — a bar chart the trace viewer
     renders natively, with the exact counts in the args. *)
  if profile <> [] then begin
    let tid = tr.Trace.p + 1 in
    emit
      (Printf.sprintf
         "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\
          \"args\":{\"name\":\"profiler\"}}"
         tid);
    let span_ns =
      Array.fold_left
        (fun acc (f : Trace.fork) -> max acc (f.Trace.f_t1 - origin))
        0 tr.Trace.forks
    in
    let total =
      List.fold_left (fun acc (_, n) -> acc + n) 0 profile
    in
    List.iter
      (fun (label, n) ->
        let share =
          if total = 0 then 0.0 else float_of_int n /. float_of_int total
        in
        let dur =
          if span_ns > 0 then share *. (float_of_int span_ns /. 1e3)
          else float_of_int n /. 1e3
        in
        emit
          (Printf.sprintf
             "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":0,\"dur\":%.3f,\"pid\":0,\
              \"tid\":%d,\"args\":{\"dispatches\":%d,\"share\":%.4f}}"
             (escape label) dur tid n share))
      profile
  end;
  Buffer.add_string buf "{\"traceEvents\":[\n";
  let rec add = function
    | [] -> ()
    | [ e ] -> Buffer.add_string buf e
    | e :: rest ->
        Buffer.add_string buf e;
        Buffer.add_string buf ",\n";
        add rest
  in
  add (List.rev !events);
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n"

let to_string ?profile tr =
  let buf = Buffer.create 4096 in
  to_buffer ?profile buf tr;
  Buffer.contents buf

let to_file ?profile path tr =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?profile tr))

(** Chrome [trace_event] export: load the file in [about://tracing] (or
    [ui.perfetto.dev]) to inspect a measured schedule interactively.

    One process, one thread row per worker domain, plus a synthetic
    "fork-join" row carrying the whole-region spans. Chunk events are
    complete ("X") events with microsecond timestamps relative to the
    first fork of the trace; each carries its coalesced [(start, len)]
    range and epoch as arguments. *)

val to_string : ?profile:(string * int) list -> Trace.t -> string
(** The trace as a JSON object [{"traceEvents": [...], ...}].

    [profile] adds a "profiler" thread row: one span per [(label,
    dispatches)] pair, all starting at t=0 with durations proportional
    to each label's dispatch share of the traced wall span (exact
    counts and shares ride in the event args). *)

val to_file : ?profile:(string * int) list -> string -> Trace.t -> unit
(** Write [to_string] to a file. *)

(** Chrome [trace_event] export: load the file in [about://tracing] (or
    [ui.perfetto.dev]) to inspect a measured schedule interactively.

    One process, one thread row per worker domain, plus a synthetic
    "fork-join" row carrying the whole-region spans. Chunk events are
    complete ("X") events with microsecond timestamps relative to the
    first fork of the trace; each carries its coalesced [(start, len)]
    range and epoch as arguments. *)

val to_string : Trace.t -> string
(** The trace as a JSON object [{"traceEvents": [...], ...}]. *)

val to_file : string -> Trace.t -> unit
(** Write [to_string] to a file. *)

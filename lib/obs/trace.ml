module Policy = Loopcoal_sched.Policy

let now () = Int64.to_int (Monotonic_clock.now ())

type chunk = {
  worker : int;
  epoch : int;
  start : int;
  len : int;
  t0 : int;
  t1 : int;
}

type fork = {
  f_epoch : int;
  f_policy : Policy.t;
  f_n : int;
  f_p : int;
  f_t0 : int;
  f_t1 : int;
}

type t = { p : int; chunks : chunk array; forks : fork array }

(* Worker-private structure-of-arrays buffer: appends touch only this
   worker's arrays, so recording is contention-free; ints (including the
   nanosecond stamps) keep the arrays unboxed. *)
type buf = {
  mutable cap : int;
  mutable count : int;
  mutable epochs : int array;
  mutable starts : int array;
  mutable lens : int array;
  mutable t0s : int array;
  mutable t1s : int array;
}

type open_fork = {
  o_epoch : int;
  o_policy : Policy.t;
  o_n : int;
  o_p : int;
  o_t0 : int;
}

type collector = {
  p : int;
  bufs : buf array;
  mutable forks_rev : fork list;
  mutable open_ : open_fork option;
  mutable next_epoch : int;
}

let make_buf capacity =
  {
    cap = capacity;
    count = 0;
    epochs = Array.make capacity 0;
    starts = Array.make capacity 0;
    lens = Array.make capacity 0;
    t0s = Array.make capacity 0;
    t1s = Array.make capacity 0;
  }

let create ?(capacity = 1024) ~p () =
  if p < 1 then invalid_arg "Trace.create: p must be >= 1";
  if capacity < 1 then invalid_arg "Trace.create: capacity must be >= 1";
  {
    p;
    bufs = Array.init p (fun _ -> make_buf capacity);
    forks_rev = [];
    open_ = None;
    next_epoch = 0;
  }

let fork_begin c ~policy ~n ~p =
  (match c.open_ with
  | Some _ -> invalid_arg "Trace.fork_begin: a fork is already open"
  | None -> ());
  c.open_ <-
    Some
      {
        o_epoch = c.next_epoch;
        o_policy = policy;
        o_n = n;
        o_p = p;
        o_t0 = now ();
      };
  c.next_epoch <- c.next_epoch + 1

let fork_end c =
  match c.open_ with
  | None -> invalid_arg "Trace.fork_end: no open fork"
  | Some o ->
      c.forks_rev <-
        {
          f_epoch = o.o_epoch;
          f_policy = o.o_policy;
          f_n = o.o_n;
          f_p = o.o_p;
          f_t0 = o.o_t0;
          f_t1 = now ();
        }
        :: c.forks_rev;
      c.open_ <- None

let grow b =
  let cap = b.cap * 2 in
  let extend a = Array.append a (Array.make b.cap 0) in
  b.epochs <- extend b.epochs;
  b.starts <- extend b.starts;
  b.lens <- extend b.lens;
  b.t0s <- extend b.t0s;
  b.t1s <- extend b.t1s;
  b.cap <- cap

let record c ~worker ~start ~len ~t0 ~t1 =
  let epoch =
    match c.open_ with
    | Some o -> o.o_epoch
    | None -> invalid_arg "Trace.record: no open fork"
  in
  let b = c.bufs.(worker) in
  if b.count = b.cap then grow b;
  let k = b.count in
  b.epochs.(k) <- epoch;
  b.starts.(k) <- start;
  b.lens.(k) <- len;
  b.t0s.(k) <- t0;
  b.t1s.(k) <- t1;
  b.count <- k + 1

let snapshot c =
  let total = Array.fold_left (fun acc b -> acc + b.count) 0 c.bufs in
  let chunks = Array.make total { worker = 0; epoch = 0; start = 0; len = 0; t0 = 0; t1 = 0 } in
  let k = ref 0 in
  Array.iteri
    (fun w b ->
      for i = 0 to b.count - 1 do
        chunks.(!k) <-
          {
            worker = w;
            epoch = b.epochs.(i);
            start = b.starts.(i);
            len = b.lens.(i);
            t0 = b.t0s.(i);
            t1 = b.t1s.(i);
          };
        incr k
      done)
    c.bufs;
  Array.sort
    (fun a b ->
      match compare a.epoch b.epoch with
      | 0 -> ( match compare a.t0 b.t0 with 0 -> compare a.worker b.worker | c -> c)
      | c -> c)
    chunks;
  let forks = Array.of_list (List.rev c.forks_rev) in
  Array.sort (fun a b -> compare a.f_epoch b.f_epoch) forks;
  { p = c.p; chunks; forks }

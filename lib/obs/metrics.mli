(** Scheduler metrics derived from a completed trace — the quantities the
    paper reasons about analytically (dispatches, synchronization per
    iteration, load balance, fork-join overhead), measured.

    All times are nanoseconds from the trace's monotonic clock. *)

module Policy := Loopcoal_sched.Policy

type fork_metrics = {
  epoch : int;
  policy : Policy.t;
  n : int;  (** coalesced iterations of the region *)
  p : int;  (** workers forked *)
  chunks_dispatched : int;
  chunks_per_worker : int array;
  iterations : int;  (** sum of traced chunk lengths; equals [n] iff the
                         chunks cover the space *)
  wall_ns : int;  (** join end - fork begin *)
  busy_ns : int array;  (** per worker: sum of chunk execution spans *)
  idle_ns : int array;  (** per worker: wall - busy, clamped at 0 *)
  imbalance : float;
      (** max busy / mean busy over all [p] workers; 1.0 = perfectly
          balanced, [p] = one worker did everything *)
  sync_ops : int;
      (** shared-counter atomic operations, from the policy's closed form
          ({!Loopcoal_sched.Chunks.sync_ops}) — one per dispatch plus one
          failed final claim per worker for dynamic policies, 0 for
          static *)
  sync_ops_per_iter : float;
  fork_latency_ns : int;
      (** earliest chunk start - fork begin: the cost of publishing the
          job and waking the workers *)
  join_latency_ns : int;  (** join end - latest chunk end *)
  dispatch_wait_ns : int array;
      (** per worker: time inside the region not spent executing chunks
          before its last chunk ends — dispatch acquisition plus queue
          contention *)
}

type t = {
  forks : fork_metrics list;  (** by epoch *)
  total_chunks : int;
  total_iters : int;
  total_wall_ns : int;  (** sum over regions *)
  total_sync_ops : int;
  imbalance : float;  (** of the largest region (by iterations) *)
}

val of_trace : Trace.t -> t

val check_partition : Trace.t -> (unit, string) result
(** Every fork region's chunks must exactly tile [1..n]: no gap, no
    overlap, lengths positive. The executor's dispatch loops are correct
    iff this holds for every policy. *)

module Table = Loopcoal_util.Table
module Policy = Loopcoal_sched.Policy
module Gantt = Loopcoal_machine.Gantt

let ms ns = float_of_int ns /. 1e6
let us ns = float_of_int ns /. 1e3

let metrics_table (m : Metrics.t) =
  let t =
    Table.create ~title:"traced scheduler metrics (per fork-join region)"
      [
        ("epoch", Table.Right);
        ("policy", Table.Left);
        ("n", Table.Right);
        ("p", Table.Right);
        ("chunks", Table.Right);
        ("sync/iter", Table.Right);
        ("imbalance", Table.Right);
        ("wall ms", Table.Right);
        ("fork us", Table.Right);
        ("join us", Table.Right);
      ]
  in
  List.iter
    (fun (f : Metrics.fork_metrics) ->
      Table.add_row t
        [
          Table.cell_int f.Metrics.epoch;
          Policy.name f.Metrics.policy;
          Table.cell_int f.Metrics.n;
          Table.cell_int f.Metrics.p;
          Table.cell_int f.Metrics.chunks_dispatched;
          Table.cell_float ~dec:4 f.Metrics.sync_ops_per_iter;
          Table.cell_float f.Metrics.imbalance;
          Table.cell_float ~dec:3 (ms f.Metrics.wall_ns);
          Table.cell_float ~dec:1 (us f.Metrics.fork_latency_ns);
          Table.cell_float ~dec:1 (us f.Metrics.join_latency_ns);
        ])
    m.Metrics.forks;
  t

let worker_table (f : Metrics.fork_metrics) =
  let t =
    Table.create
      ~title:
        (Printf.sprintf "epoch %d (%s, n=%d): per-worker breakdown"
           f.Metrics.epoch
           (Policy.name f.Metrics.policy)
           f.Metrics.n)
      [
        ("worker", Table.Right);
        ("chunks", Table.Right);
        ("busy ms", Table.Right);
        ("idle ms", Table.Right);
        ("wait us", Table.Right);
      ]
  in
  Array.iteri
    (fun w busy ->
      Table.add_row t
        [
          Table.cell_int w;
          Table.cell_int f.Metrics.chunks_per_worker.(w);
          Table.cell_float ~dec:3 (ms busy);
          Table.cell_float ~dec:3 (ms f.Metrics.idle_ns.(w));
          Table.cell_float ~dec:1 (us f.Metrics.dispatch_wait_ns.(w));
        ])
    f.Metrics.busy_ns;
  t

let measured_gantt ?width (tr : Trace.t) ~epoch =
  let fork =
    match
      Array.to_list tr.Trace.forks
      |> List.find_opt (fun (f : Trace.fork) -> f.Trace.f_epoch = epoch)
    with
    | Some f -> f
    | None ->
        invalid_arg
          (Printf.sprintf "Report.measured_gantt: no epoch %d in trace" epoch)
  in
  let spans =
    Array.to_list tr.Trace.chunks
    |> List.filter_map (fun (c : Trace.chunk) ->
           if c.Trace.epoch <> epoch then None
           else
             Some
               {
                 Gantt.row = c.Trace.worker;
                 t0 = us (c.Trace.t0 - fork.Trace.f_t0);
                 t1 = us (c.Trace.t1 - fork.Trace.f_t0);
               })
  in
  if spans = [] then
    invalid_arg
      (Printf.sprintf "Report.measured_gantt: epoch %d has no chunks" epoch);
  let chunks = List.length spans in
  let header =
    Printf.sprintf "measured: %s n=%d p=%d, %d dispatches, %.1f us wall"
      (Policy.name fork.Trace.f_policy)
      fork.Trace.f_n fork.Trace.f_p chunks
      (us (fork.Trace.f_t1 - fork.Trace.f_t0))
  in
  Gantt.render_spans ?width ~rows:fork.Trace.f_p ~header spans

let side_by_side ?(gap = "   ") left right =
  let split s = String.split_on_char '\n' s in
  let strip = function
    | lines when List.length lines > 0 && List.nth lines (List.length lines - 1) = "" ->
        List.filteri (fun i _ -> i < List.length lines - 1) lines
    | lines -> lines
  in
  let l = strip (split left) and r = strip (split right) in
  let widest = List.fold_left (fun m s -> max m (String.length s)) 0 l in
  let rec zip l r acc =
    match (l, r) with
    | [], [] -> List.rev acc
    | lh :: lt, [] -> zip lt [] ((lh ^ "\n") :: acc)
    | [], rh :: rt ->
        zip [] rt ((String.make widest ' ' ^ gap ^ rh ^ "\n") :: acc)
    | lh :: lt, rh :: rt ->
        let pad = String.make (widest - String.length lh) ' ' in
        zip lt rt ((lh ^ pad ^ gap ^ rh ^ "\n") :: acc)
  in
  String.concat "" (zip l r [])

let time_line ~engine ~domains ~policy ~wall_s =
  Printf.sprintf "time engine=%s domains=%d policy=%s wall_s=%.6f" engine
    domains policy wall_s

let time_suffix ?(extra = []) ~opt ~plan_cache () =
  Printf.sprintf " opt=%d plan_cache=%s%s" opt plan_cache
    (String.concat ""
       (List.map (fun (k, v) -> Printf.sprintf " %s=%s" k v) extra))

(* Legacy counter facade over the metrics registry. The plan-cache
   hit/miss totals predate [Registry]; their API is kept, but the
   storage now lives in registry counters so `loopc --stats-json` and
   [Registry.render] see them, and [reset] clears the whole registry
   (every metric any module has registered), not just these two. *)

let hits = Registry.counter "plan_cache.hit"
let misses = Registry.counter "plan_cache.miss"
let plan_cache_hit () = Registry.incr hits
let plan_cache_miss () = Registry.incr misses
let plan_cache_stats () = (Registry.value hits, Registry.value misses)
let reset () = Registry.reset ()

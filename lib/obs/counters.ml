(* Process-wide observability counters. Plain atomics: incremented from
   whichever thread compiles, read by reporting code. *)

let hits = Atomic.make 0
let misses = Atomic.make 0
let plan_cache_hit () = Atomic.incr hits
let plan_cache_miss () = Atomic.incr misses
let plan_cache_stats () = (Atomic.get hits, Atomic.get misses)

let reset () =
  Atomic.set hits 0;
  Atomic.set misses 0

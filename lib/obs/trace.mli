(** Low-overhead runtime tracing for the parallel executor.

    A {!collector} owns one preallocated structure-of-arrays buffer per
    worker domain. The executor stamps each dispatched chunk with
    monotonic nanosecond timestamps and appends it to the worker's own
    buffer — no locking, no shared mutation, and no allocation on the hot
    path until a buffer doubles (amortized, worker-private). Tracing that
    is off costs nothing: the executor selects the untraced code path at
    fork time, so no probe ever runs.

    Fork-join regions are numbered by {e epoch}; every chunk carries the
    epoch it ran under, so one trace can cover a whole program with many
    parallel nests and still be checked nest by nest. *)

module Policy := Loopcoal_sched.Policy

val now : unit -> int
(** Monotonic clock, nanoseconds (CLOCK_MONOTONIC via the bechamel
    stub). Timestamps are only meaningfully compared within a process. *)

(** {1 Completed traces} *)

type chunk = {
  worker : int;  (** domain that executed the chunk, 0-based *)
  epoch : int;  (** fork-join region the chunk belongs to *)
  start : int;  (** first coalesced iteration, 1-based *)
  len : int;
  t0 : int;  (** ns, chunk body started *)
  t1 : int;  (** ns, chunk body finished *)
}

type fork = {
  f_epoch : int;
  f_policy : Policy.t;
  f_n : int;  (** coalesced iterations of the region *)
  f_p : int;  (** workers forked *)
  f_t0 : int;  (** ns, fork began (before workers start) *)
  f_t1 : int;  (** ns, join completed *)
}

type t = {
  p : int;  (** worker slots of the collector *)
  chunks : chunk array;  (** sorted by (epoch, t0, worker) *)
  forks : fork array;  (** by epoch *)
}

(** {1 Collecting} *)

type collector

val create : ?capacity:int -> p:int -> unit -> collector
(** A collector for up to [p] workers. [capacity] (default 1024) is the
    initial per-worker chunk capacity; buffers double when exceeded. *)

val fork_begin : collector -> policy:Policy.t -> n:int -> p:int -> unit
(** Open the next fork-join region. Must not be called while a region is
    open (the executor never nests traced forks: inner parallel loops of
    a parallel region run sequentially inside chunks). *)

val fork_end : collector -> unit
(** Close the open region, stamping the join time. *)

val record : collector -> worker:int -> start:int -> len:int -> t0:int -> t1:int -> unit
(** Append a chunk to [worker]'s buffer under the open epoch. Safe to
    call concurrently from distinct workers. *)

val snapshot : collector -> t
(** The trace so far. Call after all forks have ended. *)

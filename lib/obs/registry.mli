(** Process-wide metrics registry.

    Named metrics in one global table: atomic counters, gauges, and
    log2-bucketed histograms with p50/p90/p99. Handles are created (or
    found) once per name at producer initialization; the hot operations
    ({!incr}, {!add}, {!observe}) touch only the handle's atomics, so
    any domain may record concurrently.

    Names are dot-separated [component.event[_unit]] (e.g.
    [plan_cache.hit], [tapeopt.gvn.ns]); rendering and JSON dumps are
    sorted by name. Requesting an existing name with a different metric
    kind raises [Invalid_argument]. *)

type counter
type gauge
type histogram

val counter : string -> counter
val gauge : string -> gauge
val histogram : string -> histogram

(** {1 Recording} *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val set : gauge -> float -> unit
val get : gauge -> float

val observe : histogram -> int -> unit
(** Record one value. Non-positive values land in bucket 0; value [v >
    0] lands in the bucket covering [[2^(b-1), 2^b)] where [b] is the
    bit length of [v]. *)

val now_ns : unit -> int
(** Monotonic nanoseconds (same clock as [Trace.now]). *)

val time : histogram -> (unit -> 'a) -> 'a
(** [time h f] runs [f ()] and observes its wall time in nanoseconds,
    including when [f] raises. *)

(** {1 Reading} *)

type hstat = {
  count : int;
  sum : int;
  p50 : int;  (** bucket lower bound at the 50th percentile *)
  p90 : int;
  p99 : int;
  max_v : int;  (** exact largest observed value *)
}

val percentile : histogram -> float -> int
(** Lower bound of the bucket containing the given quantile (in [0,1]);
    0 for an empty histogram. *)

val hstats : histogram -> hstat

type stat = Counter_v of int | Gauge_v of float | Hist_v of hstat

val snapshot : unit -> (string * stat) list
(** All registered metrics, sorted by name. *)

val render : unit -> string
(** Human-readable dump, one line per metric, sorted by name. *)

val to_json : unit -> string
(** The whole registry as a JSON object keyed by metric name. *)

val reset : unit -> unit
(** Zero every registered metric of every kind (tests). *)

(* Runtime smoke: a 2-domain micro case wired into `dune build @runtest`.

   Runs the matmul kernel through the compiled runtime on 2 domains
   under GSS and checks the arrays against the reference interpreter.
   Fast enough to run on every test invocation; exits non-zero on any
   divergence so CI catches runtime regressions immediately. *)

open Loopcoal

let () =
  let prog = Kernels.matmul ~ra:12 ~ca:9 ~cb:11 in
  let st = Eval.run prog in
  let outcome =
    Runtime.Exec.run ~domains:2 ~policy:Policy.Gss prog
  in
  if Runtime.Exec.agrees_with_interpreter outcome st then
    print_endline "runtime smoke ok: matmul, 2 domains, GSS"
  else begin
    prerr_endline "runtime smoke FAILED: parallel result differs from interpreter";
    exit 1
  end;
  (* And one reduction case: integral sum, exact under any association. *)
  let open Loopcoal_ir in
  let sum_prog =
    Builder.program
      ~scalars:[ Builder.real_scalar "s" ]
      [
        Builder.doall "i" (Builder.int 1) (Builder.int 50)
          [
            Builder.doall "j" (Builder.int 1) (Builder.int 40)
              [
                Builder.assign "s"
                  Builder.(var "s" + (var "i" * var "j"));
              ];
          ];
      ]
  in
  let st = Eval.run sum_prog in
  let outcome =
    Runtime.Exec.run ~domains:2 ~policy:(Policy.Self_sched 16) sum_prog
  in
  if Runtime.Exec.agrees_with_interpreter ~compare_scalars:true outcome st then
    print_endline "runtime smoke ok: nested sum reduction, 2 domains, self-sched"
  else begin
    prerr_endline "runtime smoke FAILED: reduction merge differs from interpreter";
    exit 1
  end

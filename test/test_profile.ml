(* Tape profiler and provenance side tables.

   Load-bearing invariants:
   - every lowered tape keeps its provenance arrays aligned with its
     instruction arrays through the whole optimizer pipeline, with every
     tag in range and tag 0 the plan root;
   - a matmul profile attributes >= 90% of dispatches to concrete source
     statements/loops (not strip-level glue) at every opt level — the
     acceptance bar for the provenance plumbing surviving gvn, licm,
     streaming, fusion and unrolling;
   - running with the profiler on changes no result bit and no trace
     structure, on any engine, opt level, policy or domain count. *)

open Loopcoal
module Exec = Runtime.Exec
module Compile = Runtime.Compile
module Bytecode = Runtime.Bytecode
module Profile = Runtime.Profile

let opt_levels = [ 0; 1; 2 ]

(* ---------- provenance invariants ---------- *)

let check_tape_provenance what (t : Bytecode.tape) =
  let ntags = Array.length t.Bytecode.tp_tags in
  let section name ops src =
    if Array.length src <> Array.length ops then
      Alcotest.failf "%s: %s provenance length %d <> %d instrs" what name
        (Array.length src) (Array.length ops);
    Array.iter
      (fun tag ->
        if tag < 0 || tag >= ntags then
          Alcotest.failf "%s: %s tag %d out of range [0,%d)" what name tag
            ntags)
      src
  in
  if ntags = 0 then Alcotest.failf "%s: empty tag table" what;
  Alcotest.(check string)
    (what ^ ": tag 0 is the plan root") "strip"
    t.Bytecode.tp_tags.(0).Bytecode.sl_stmt;
  section "ops" t.Bytecode.tp_ops t.Bytecode.tp_src;
  section "pre" t.Bytecode.tp_pre t.Bytecode.tp_pre_src;
  match (t.Bytecode.tp_unrolled, t.Bytecode.tp_unrolled_src) with
  | None, None -> ()
  | Some u, Some s -> section "unrolled" u s
  | Some _, None -> Alcotest.failf "%s: unrolled body without provenance" what
  | None, Some _ -> Alcotest.failf "%s: unrolled provenance without body" what

let test_provenance_invariants () =
  List.iter
    (fun name ->
      let mk = Option.get (Kernels.by_name name) in
      List.iter
        (fun opt_level ->
          let c = Compile.compile ~opt_level (mk ()) in
          List.iteri
            (fun i (p : Compile.plan) ->
              match p.Compile.tape with
              | None -> ()
              | Some t ->
                  check_tape_provenance
                    (Printf.sprintf "%s -O%d plan %d" name opt_level i)
                    t)
            (Compile.plans c))
        opt_levels)
    Kernels.all_names

(* pp_provenance renders every tag and is stable under re-rendering. *)
let test_pp_provenance () =
  let c = Compile.compile ~opt_level:2 (Kernels.matmul ~ra:4 ~ca:5 ~cb:3) in
  let tapes = List.filter_map (fun p -> p.Compile.tape) (Compile.plans c) in
  Alcotest.(check bool) "matmul lowers" true (tapes <> []);
  List.iter
    (fun t ->
      let s = Bytecode.pp_provenance t in
      Alcotest.(check bool) "mentions the tag table" true
        (String.length s > 0);
      Alcotest.(check string) "deterministic" s (Bytecode.pp_provenance t))
    tapes

(* ---------- attribution ---------- *)

let collector_of ?(domains = 1) ?policy ~opt_level prog =
  let c = Compile.compile ~opt_level prog in
  let pc = Profile.create () in
  ignore (Exec.run_compiled ~domains ?policy ~profile:pc c : Exec.outcome);
  pc

let profile_of ?domains ?policy ~opt_level prog =
  Profile.summarize (collector_of ?domains ?policy ~opt_level prog)

let test_matmul_attribution () =
  List.iter
    (fun opt_level ->
      let sm = profile_of ~opt_level (Kernels.matmul ~ra:8 ~ca:6 ~cb:7) in
      Alcotest.(check bool)
        (Printf.sprintf "-O%d records dispatches" opt_level)
        true
        (sm.Profile.sm_dispatches > 0);
      Alcotest.(check bool)
        (Printf.sprintf "-O%d iterations counted" opt_level)
        true (sm.Profile.sm_iters > 0);
      let frac = Profile.attributed_fraction sm in
      if frac < 0.9 then
        Alcotest.failf "-O%d attribution %.3f < 0.9" opt_level frac;
      (* The inner serial k loop must be visible as its own row. *)
      Alcotest.(check bool)
        (Printf.sprintf "-O%d attributes the k loop" opt_level)
        true
        (List.exists
           (fun r -> r.Profile.lr_loop = "i.j/k")
           sm.Profile.sm_loops))
    opt_levels

(* Body dispatch counts are schedule-invariant: the same iterations
   execute the same body instructions regardless of domains and policy.
   Strip-prologue dispatches and root-tagged glue (unroll separators)
   scale with strip count, which chunk boundaries legitimately change —
   so the invariant covers the ops/unrolled sections per non-root tag.
   An unrolled copy carries the same tags as the body it replicates, so
   the unrolled-vs-remainder mix cancels out per tag. *)
let body_rows entries =
  List.concat_map
    (fun ((t : Bytecode.tape), (pf : Bytecode.profile)) ->
      let acc = Hashtbl.create 16 in
      let add src counts =
        Array.iteri
          (fun i c ->
            let tag = src.(i) in
            if c > 0 && tag <> 0 then
              let loc = t.Bytecode.tp_tags.(tag) in
              let key = (loc.Bytecode.sl_loop, loc.Bytecode.sl_stmt) in
              Hashtbl.replace acc key
                (c + Option.value ~default:0 (Hashtbl.find_opt acc key)))
          counts
      in
      add t.Bytecode.tp_src pf.Bytecode.pf_ops;
      (match t.Bytecode.tp_unrolled_src with
      | Some s when Array.length pf.Bytecode.pf_unrolled > 0 ->
          add s pf.Bytecode.pf_unrolled
      | _ -> ());
      Hashtbl.fold (fun k v l -> (k, v) :: l) acc [])
    entries
  |> List.sort compare

let test_attribution_schedule_invariant () =
  let prog = Kernels.tri_gather ~n:10 in
  let base_pc = collector_of ~opt_level:2 prog in
  let base_iters = (Profile.summarize base_pc).Profile.sm_iters in
  let base = body_rows (Profile.tapes base_pc) in
  Alcotest.(check bool) "baseline has body rows" true (base <> []);
  List.iter
    (fun (domains, policy) ->
      let pc = collector_of ~domains ~policy ~opt_level:2 prog in
      Alcotest.(check int)
        (Printf.sprintf "iters (%d domains, %s)" domains (Policy.name policy))
        base_iters
        (Profile.summarize pc).Profile.sm_iters;
      Alcotest.(check bool)
        (Printf.sprintf "body dispatch rows (%d domains, %s)" domains
           (Policy.name policy))
        true
        (base = body_rows (Profile.tapes pc)))
    [ (2, Policy.Static_block); (4, Policy.Gss); (3, Policy.Self_sched 2) ]

(* ---------- folded stacks ---------- *)

let test_folded_format () =
  let sm = profile_of ~opt_level:2 (Kernels.matmul ~ra:6 ~ca:4 ~cb:5) in
  let folded = Profile.folded sm in
  let lines =
    String.split_on_char '\n' folded |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "one line per location"
    (List.length sm.Profile.sm_loops)
    (List.length lines);
  let total =
    List.fold_left
      (fun acc line ->
        (* Folded format: frames up to the last space, count after it. *)
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "folded line %S has no count" line
        | Some i ->
            let frames = String.sub line 0 i in
            let count =
              String.sub line (i + 1) (String.length line - i - 1)
            in
            if frames = "" then Alcotest.failf "empty frames in %S" line;
            acc + int_of_string count)
      0 lines
  in
  Alcotest.(check int) "counts sum to total dispatches"
    sm.Profile.sm_dispatches total

(* ---------- profiler on/off is invisible ---------- *)

let trace_shape (tr : Trace.t) =
  ( Array.to_list
      (Array.map
         (fun (f : Trace.fork) ->
           (f.Trace.f_epoch, Policy.name f.Trace.f_policy, f.Trace.f_n,
            f.Trace.f_p))
         tr.Trace.forks),
    List.sort compare
      (Array.to_list
         (Array.map
            (fun (c : Trace.chunk) ->
              (c.Trace.epoch, c.Trace.worker, c.Trace.start, c.Trace.len))
            tr.Trace.chunks)) )

let test_profiled_run_identical () =
  let prog = Kernels.cond_stencil ~n:12 in
  List.iter
    (fun opt_level ->
      List.iter
        (fun engine ->
          List.iter
            (fun domains ->
              let c = Compile.compile ~opt_level prog in
              let off = Exec.run_compiled ~domains ~engine c in
              let pc = Profile.create () in
              let on = Exec.run_compiled ~domains ~engine ~profile:pc c in
              if off <> on then
                Alcotest.failf "-O%d %d domains: profiled outcome differs"
                  opt_level domains;
              (* Trace structure is profile-invariant too (timestamps are
                 not — compare epochs, ownership and chunk geometry). *)
              let tr_off = Trace.create ~p:domains () in
              let tr_on = Trace.create ~p:domains () in
              ignore (Exec.run_compiled ~domains ~engine ~trace:tr_off c);
              let pc2 = Profile.create () in
              ignore
                (Exec.run_compiled ~domains ~engine ~trace:tr_on ~profile:pc2
                   c);
              if
                trace_shape (Trace.snapshot tr_off)
                <> trace_shape (Trace.snapshot tr_on)
              then
                Alcotest.failf "-O%d %d domains: profiled trace shape differs"
                  opt_level domains)
            [ 1; 3 ])
        [ Exec.Bytecode; Exec.Closure ])
    opt_levels

let prop_profile_onoff =
  QCheck.Test.make ~count:8
    ~name:"profiler on/off bit-identical (random DOALL nests)"
    Test_runtime.arbitrary_doall_nest
    (fun prog ->
      List.for_all
        (fun opt_level ->
          let c = Compile.compile ~opt_level prog in
          List.for_all
            (fun domains ->
              List.for_all
                (fun policy ->
                  let off = Exec.run_compiled ~domains ~policy c in
                  let pc = Profile.create () in
                  let on =
                    Exec.run_compiled ~domains ~policy ~profile:pc c
                  in
                  off = on
                  (* Profiled bytecode runs must actually count. *)
                  && ((Profile.summarize pc).Profile.sm_dispatches > 0
                     || List.for_all
                          (fun (p : Compile.plan) -> p.Compile.tape = None)
                          (Compile.plans c)))
                [ Policy.Static_block; Policy.Gss ])
            [ 1; 2 ])
        opt_levels)

(* ---------- rendering ---------- *)

let test_render_tables () =
  let sm = profile_of ~opt_level:2 (Kernels.matmul ~ra:6 ~ca:4 ~cb:5) in
  let s = Profile.render ~top:5 sm in
  List.iter
    (fun needle ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "render mentions %S" needle)
        true (contains s needle))
    [ "hot loops"; "hot opcodes"; "dispatches"; "i.j/k"; "fmac2" ]

let suite =
  [
    Alcotest.test_case "provenance aligned through all passes (kernels x \
                        opt levels)" `Quick test_provenance_invariants;
    Alcotest.test_case "pp_provenance stable" `Quick test_pp_provenance;
    Alcotest.test_case "matmul attribution >= 90% at every opt level" `Quick
      test_matmul_attribution;
    Alcotest.test_case "attribution is schedule-invariant" `Quick
      test_attribution_schedule_invariant;
    Alcotest.test_case "folded stacks well-formed and complete" `Quick
      test_folded_format;
    Alcotest.test_case "profiler on/off identical (results + trace shape)"
      `Quick test_profiled_run_identical;
    Alcotest.test_case "render has hot-loop and hot-opcode tables" `Quick
      test_render_tables;
    Gen.to_alcotest prop_profile_onoff;
  ]

(* Cross-validation of the C/OpenMP emitter: emit each kernel (plain,
   coalesced, and collapse-mode), compile with the system C compiler,
   execute with several OpenMP threads, and compare the printed array
   store against the reference interpreter. Skipped cleanly when no C
   compiler is present. *)

open Loopcoal

let cc_available =
  lazy (Sys.command "cc --version > /dev/null 2>&1" = 0)

let require_cc () =
  if not (Lazy.force cc_available) then
    Alcotest.skip ()

let temp_base = Filename.temp_file "loopcoal_emit" ""

(* Every path [compile_and_run] touches. Removed at exit — including
   after a test failure, since Alcotest fails by exiting normally — so
   repeated runs don't litter the temp directory. *)
let temp_files =
  [
    temp_base; temp_base ^ ".c"; temp_base ^ ".exe"; temp_base ^ ".out";
    temp_base ^ ".cerr";
  ]

let () =
  at_exit (fun () ->
      List.iter
        (fun f -> try Sys.remove f with Sys_error _ -> ())
        temp_files)

let compile_and_run source =
  let c_file = temp_base ^ ".c" in
  let exe = temp_base ^ ".exe" in
  let out_file = temp_base ^ ".out" in
  (* [with_open_text] closes — and therefore flushes — the C file
     before the compiler subprocess reads it. *)
  Out_channel.with_open_text c_file (fun oc -> output_string oc source);
  let compile =
    Printf.sprintf "cc -O1 -fopenmp -o %s %s 2> %s.cerr" exe c_file temp_base
  in
  if Sys.command compile <> 0 then Error "compilation failed"
  else if
    Sys.command
      (Printf.sprintf "OMP_NUM_THREADS=3 %s > %s 2>/dev/null" exe out_file)
    <> 0
  then Error "execution failed"
  else
    Ok
      (In_channel.with_open_text out_file In_channel.input_lines
      |> List.map float_of_string)

(* Array part of the interpreter's final store, in dump (sorted) order. *)
let interpreted_arrays p =
  let st = Eval.run p in
  let arrays, _ = Eval.dump st in
  List.concat_map (fun (_, data) -> Array.to_list data) arrays

let cross_validate name p =
  require_cc ();
  match Loopcoal_transform.Emit_c.program_to_c p with
  | Error m -> Alcotest.failf "%s: emission failed: %s" name m
  | Ok source -> (
      match compile_and_run source with
      | Error m -> Alcotest.failf "%s: %s" name m
      | Ok values ->
          let expected = interpreted_arrays p in
          (* The executable prints arrays first (sorted) then scalars;
             compare the array prefix. Scalars privatized by OpenMP keep
             their pre-loop values in C, unlike the sequential
             interpreter, so they are excluded by design. *)
          if List.length values < List.length expected then
            Alcotest.failf "%s: too few output values" name;
          List.iteri
            (fun idx want ->
              let got = List.nth values idx in
              if abs_float (got -. want) > 1e-9 then
                Alcotest.failf "%s: array value %d: C %.17g vs interp %.17g"
                  name idx got want)
            expected)

let kernels_to_check =
  (* pi is scalar-only (nothing in the array store) but still checks that
     the emitted C compiles and runs. *)
  [ "matmul"; "gauss_jordan"; "stencil"; "swap"; "wavefront"; "transpose";
    "histogram"; "pi" ]

let test_kernels_plain () =
  List.iter
    (fun name -> cross_validate name ((Option.get (Kernels.by_name name)) ()))
    kernels_to_check

let test_kernels_coalesced () =
  List.iter
    (fun name ->
      let p = (Option.get (Kernels.by_name name)) () in
      let p', _ = Coalesce.apply_all_program p in
      cross_validate (name ^ "/coalesced") p')
    kernels_to_check

let test_kernels_chunk_coalesced () =
  List.iter
    (fun name ->
      let p = (Option.get (Kernels.by_name name)) () in
      match Coalesce_chunked.apply_program ~chunk:7 p with
      | Ok p' -> cross_validate (name ^ "/chunked") p'
      | Error _ -> () (* kernels without a coalescible nest *))
    kernels_to_check

let test_collapse_mode () =
  require_cc ();
  (* collapse-mode emission of the *uncoalesced* nest: OpenMP performs the
     coalescing. *)
  let p = Kernels.stencil ~n:9 in
  match Loopcoal_transform.Emit_c.program_to_c ~collapse:true p with
  | Error m -> Alcotest.fail m
  | Ok source ->
      if
        not
          (String.length source > 0
          && (let found = ref false in
              String.iteri
                (fun i _ ->
                  if
                    i + 11 <= String.length source
                    && String.sub source i 11 = "collapse(2)"
                  then found := true)
                source;
              !found))
      then Alcotest.fail "expected a collapse(2) pragma";
      (match compile_and_run source with
      | Error m -> Alcotest.fail m
      | Ok values ->
          let expected = interpreted_arrays p in
          List.iteri
            (fun idx want ->
              if abs_float (List.nth values idx -. want) > 1e-9 then
                Alcotest.failf "collapse: value %d differs" idx)
            expected)

let test_emission_rejects_invalid () =
  let bad =
    Builder.program [ Builder.assign "ghost" (Builder.int 1) ]
  in
  match Loopcoal_transform.Emit_c.program_to_c bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "invalid programs must not emit"

let test_expr_emission () =
  let env = Validate.env_of_program (Builder.program []) in
  let env = Validate.bind_index env "i" in
  let cases =
    [
      (Builder.(var "i" + int 1), "(i + 1L)");
      (Builder.cdiv (Builder.var "i") (Builder.int 4), "lc_cdiv(i, 4L)");
      (Builder.(var "i" % int 3), "(i % 3L)");
      (Builder.(real 1.5 * var "i"), "(1.5 * (double)i)");
      (Builder.imin (Builder.var "i") (Builder.int 2), "lc_min(i, 2L)");
    ]
  in
  List.iter
    (fun (e, want) ->
      Alcotest.(check string)
        want want
        (Loopcoal_transform.Emit_c.expr_to_c env e))
    cases

let suite =
  [
    Alcotest.test_case "expr emission" `Quick test_expr_emission;
    Alcotest.test_case "rejects invalid programs" `Quick
      test_emission_rejects_invalid;
    Alcotest.test_case "kernels (plain)" `Slow test_kernels_plain;
    Alcotest.test_case "kernels (coalesced)" `Slow test_kernels_coalesced;
    Alcotest.test_case "kernels (chunk-coalesced)" `Slow
      test_kernels_chunk_coalesced;
    Alcotest.test_case "collapse mode" `Slow test_collapse_mode;
  ]

(* Random-program emission: every generated program must emit, compile
   and reproduce the interpreter's array store. The generator annotates
   loops [Parallel] at random — including racy ones — so annotations are
   first demoted to what the analysis can prove: emitted pragmas then
   only cover genuinely independent loops, whose execution order cannot
   matter. Kept small (the C compiler runs per case). *)
let prop_random_programs_cross_validate =
  QCheck.Test.make ~name:"random programs emit, compile and agree" ~count:25
    Gen.arbitrary_program (fun p ->
      if not (Lazy.force cc_available) then true
      else
        let p =
          { p with Ast.body = Loop_class.infer_and_demote_block p.Ast.body }
        in
        match Loopcoal_transform.Emit_c.program_to_c p with
        | Error _ -> false
        | Ok source -> (
            match compile_and_run source with
            | Error _ -> false
            | Ok values ->
                let expected = interpreted_arrays p in
                List.length values >= List.length expected
                && List.for_all2
                     (fun got want -> abs_float (got -. want) <= 1e-9)
                     (List.filteri
                        (fun i _ -> i < List.length expected)
                        values)
                     expected))

let suite = suite @ [ Gen.to_alcotest prop_random_programs_cross_validate ]

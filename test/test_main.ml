let () =
  Alcotest.run "loopcoal"
    [
      ("util", Test_util.suite);
      ("ir", Test_ir.suite);
      ("analysis", Test_analysis.suite);
      ("transform", Test_transform.suite);
      ("transform2", Test_transform2.suite);
      ("transform3", Test_transform3.suite);
      ("soundness", Test_soundness.suite);
      ("frontend", Test_frontend.suite);
      ("reporting", Test_reporting.suite);
      ("emit-c", Test_emit_c.suite);
      ("sched", Test_sched.suite);
      ("machine", Test_machine.suite);
      ("workload", Test_workload.suite);
      ("driver", Test_driver.suite);
      ("runtime", Test_runtime.suite);
      ("bytecode", Test_bytecode.suite);
      ("tapeopt", Test_tapeopt.suite);
      ("tapecheck", Test_tapecheck.suite);
      ("plancache", Test_plancache.suite);
      ("obs", Test_obs.suite);
      ("profile", Test_profile.suite);
      ("verify", Test_verify.suite);
      ("search", Test_search.suite);
      ("native", Test_native.suite);
    ]

(* Brute-force soundness checks: the dependence analysis and the distance
   analysis are compared against exhaustive enumeration of small iteration
   spaces. The analyses may be conservative (claim a dependence that does
   not exist) but must never claim independence when a conflict exists —
   these properties are the foundation every transformation's legality
   rests on. *)

open Loopcoal
module G = QCheck.Gen
module B = Builder

(* A random 1-D affine subscript a*i + b with small coefficients. *)
type affine_sub = { a : int; b : int }

let sub_gen =
  let open G in
  let* a = int_range (-3) 3 in
  let+ b = int_range (-6) 6 in
  { a; b }

let sub_expr { a; b } : Ast.expr =
  Bin (Add, Bin (Mul, Int a, Var "i"), Int b)

let eval_sub { a; b } i = (a * i) + b

(* A conflict between iterations x <> y exists when the two subscript
   vectors coincide. *)
let exists_conflict ~lo ~hi subs1 subs2 =
  let found = ref false in
  for x = lo to hi do
    for y = lo to hi do
      if
        x <> y
        && List.for_all2 (fun s1 s2 -> eval_sub s1 x = eval_sub s2 y) subs1 subs2
      then found := true
    done
  done;
  !found

let case_gen =
  let open G in
  let* dims = int_range 1 2 in
  let* subs1 = flatten_l (List.init dims (fun _ -> sub_gen)) in
  let* subs2 = flatten_l (List.init dims (fun _ -> sub_gen)) in
  let* lo = int_range 1 3 in
  let+ width = int_range 0 8 in
  (subs1, subs2, lo, lo + width)

let print_case (subs1, subs2, lo, hi) =
  let show subs =
    String.concat ", "
      (List.map (fun s -> Pretty.expr_to_string (sub_expr s)) subs)
  in
  Printf.sprintf "A[%s] vs A[%s] on i in [%d, %d]" (show subs1) (show subs2)
    lo hi

let carried_analysis (subs1, subs2, lo, hi) =
  Depend.carried ~level:"i" ~range:(Some (lo, hi))
    ~classify_rest:(fun _ -> Depend.Shared)
    ~range_of:(fun _ -> None)
    (List.map sub_expr subs1) (List.map sub_expr subs2)

let prop_carried_sound =
  QCheck.Test.make
    ~name:"Depend.carried never misses a real cross-iteration conflict"
    ~count:2000
    (QCheck.make ~print:print_case case_gen)
    (fun ((subs1, subs2, lo, hi) as case) ->
      (* soundness: real conflict -> analysis reports carried *)
      (not (exists_conflict ~lo ~hi subs1 subs2)) || carried_analysis case)

let prop_carried_exact_on_strong_siv =
  (* For equal coefficients (strong SIV) the triangular Banerjee bounds
     are exact: the analysis must agree with brute force in BOTH
     directions. *)
  QCheck.Test.make ~name:"strong SIV carried test is exact" ~count:2000
    (QCheck.make
       ~print:(fun (a, b1, b2, lo, w) ->
         Printf.sprintf "a=%d b1=%d b2=%d range [%d,%d]" a b1 b2 lo (lo + w))
       G.(
         let* a = int_range 1 3 in
         let* b1 = int_range (-6) 6 in
         let* b2 = int_range (-6) 6 in
         let* lo = int_range 1 3 in
         let+ w = int_range 0 8 in
         (a, b1, b2, lo, w)))
    (fun (a, b1, b2, lo, w) ->
      let hi = lo + w in
      let s1 = { a; b = b1 } and s2 = { a; b = b2 } in
      exists_conflict ~lo ~hi [ s1 ] [ s2 ]
      = carried_analysis ([ s1 ], [ s2 ], lo, hi))

(* ---------- distance analysis vs brute force ---------- *)

let min_actual_distance ~lo ~hi subs1 subs2 =
  let best = ref None in
  for x = lo to hi do
    for y = lo to hi do
      if
        x <> y
        && List.for_all2 (fun s1 s2 -> eval_sub s1 x = eval_sub s2 y) subs1 subs2
      then
        let d = abs (y - x) in
        best := Some (match !best with None -> d | Some m -> min m d)
    done
  done;
  !best

let prop_distance_sound =
  (* If the analysis reports Min_distance d, no conflict may exist at any
     distance smaller than d (that is what cycle shrinking relies on);
     No_carried means no conflict at all. *)
  QCheck.Test.make ~name:"Distance analysis is a valid lower bound"
    ~count:2000
    (QCheck.make ~print:print_case case_gen)
    (fun (subs1, subs2, lo, hi) ->
      (* Build the loop: body writes A[subs1] and reads A[subs2]. *)
      let l : Ast.loop =
        {
          index = "i";
          lo = Int lo;
          hi = Int hi;
          step = Int 1;
          par = Serial;
          body =
            [
              Ast.Assign
                ( Elem ("A", List.map sub_expr subs1),
                  Load ("A", List.map sub_expr subs2) );
            ];
        }
      in
      let actual = min_actual_distance ~lo ~hi subs1 subs2 in
      match Distance.min_carried_distance l with
      | Distance.Unknown -> true (* always allowed *)
      | Distance.No_carried -> actual = None
      | Distance.Min_distance d -> (
          match actual with
          | None -> true (* conservative: claimed a dep that is not there *)
          | Some real -> d <= real))

(* ---------- transformation legality vs brute force ---------- *)

let prop_doall_verdict_sound =
  (* If the classifier says DOALL, brute force must find no conflict. *)
  QCheck.Test.make ~name:"Loop_class DOALL verdict is sound" ~count:2000
    (QCheck.make ~print:print_case case_gen)
    (fun (subs1, subs2, lo, hi) ->
      let l : Ast.loop =
        {
          index = "i";
          lo = Int lo;
          hi = Int hi;
          step = Int 1;
          par = Serial;
          body =
            [
              Ast.Assign
                ( Elem ("A", List.map sub_expr subs1),
                  Load ("A", List.map sub_expr subs2) );
            ];
        }
      in
      (not (Loop_class.is_doall l)) || not (exists_conflict ~lo ~hi subs1 subs2))

let suite =
  [
    Gen.to_alcotest prop_carried_sound;
    Gen.to_alcotest prop_carried_exact_on_strong_siv;
    Gen.to_alcotest prop_distance_sound;
    Gen.to_alcotest prop_doall_verdict_sound;
  ]

(* ---------- transformation legality vs actual semantics ----------

   Interchange and fusion decide legality from direction-constrained
   dependence queries. Here random affine 2-D programs (subscripts chosen
   to stay in bounds, so every variant executes) check that whenever the
   transformation accepts, the result is observably equal. *)

let small_shift = G.int_range (-2) 2

(* A[i+a, j+b] over loops i,j in [3, 6] stays within a 10x10 array. *)
let shifted_ref name =
  let open G in
  let* a = small_shift in
  let+ b = small_shift in
  (name, a, b)

let two_d_program_gen =
  let open G in
  let* w1 = shifted_ref "A" in
  let* r1 = oneof [ shifted_ref "A"; shifted_ref "Bb" ] in
  let* w2 = oneof [ shifted_ref "A"; shifted_ref "Bb" ] in
  let+ r2 = oneof [ shifted_ref "A"; shifted_ref "Bb" ] in
  let subs a b : Ast.expr list =
    [ B.(var "i" + int a); B.(var "j" + int b) ]
  in
  let mk_lvalue (name, a, b) : Ast.lvalue = Elem (name, subs a b) in
  let mk_load (name, a, b) : Ast.expr = Load (name, subs a b) in
  let body =
    [
      Ast.Assign
        ( mk_lvalue w1,
          Ast.Bin
            ( Add,
              Ast.Bin (Add, mk_load r1, Var "i"),
              Ast.Bin (Mul, Var "j", Int 3) ) );
      Ast.Assign (mk_lvalue w2, Ast.Bin (Add, mk_load r2, Var "i"));
    ]
  in
  B.program
    ~arrays:[ B.array "A" [ 10; 10 ]; B.array "Bb" [ 10; 10 ] ]
    [
      B.for_ "i" (B.int 3) (B.int 6)
        [ B.for_ "j" (B.int 3) (B.int 6) body ];
    ]

let arbitrary_two_d =
  QCheck.make ~print:Pretty.program_to_string two_d_program_gen

let prop_interchange_legality_sound =
  QCheck.Test.make
    ~name:"accepted interchanges preserve semantics (random affine 2-D)"
    ~count:500 arbitrary_two_d (fun p ->
      match p.Ast.body with
      | [ s ] -> (
          match Interchange.apply s with
          | Ok s' ->
              Result.is_ok
                (Pipeline.observably_equal ~reference:p
                   { p with Ast.body = [ s' ] })
          | Error _ -> true (* declining is always safe *))
      | _ -> false)

let prop_fusion_legality_sound =
  QCheck.Test.make
    ~name:"accepted fusions preserve semantics (random affine loop pairs)"
    ~count:500
    (QCheck.pair arbitrary_two_d arbitrary_two_d)
    (fun (p1, p2) ->
      (* Take the two outer loops (same headers by construction) as
         adjacent statements of one program. *)
      match (p1.Ast.body, p2.Ast.body) with
      | [ s1 ], [ s2 ] -> (
          let base =
            B.program
              ~arrays:[ B.array "A" [ 10; 10 ]; B.array "Bb" [ 10; 10 ] ]
              [ s1; s2 ]
          in
          match Fuse.apply s1 s2 with
          | Ok fused ->
              Result.is_ok
                (Pipeline.observably_equal ~reference:base
                   { base with Ast.body = [ fused ] })
          | Error _ -> true)
      | _ -> false)

let suite =
  suite
  @ [
      Gen.to_alcotest prop_interchange_legality_sound;
      Gen.to_alcotest prop_fusion_legality_sound;
    ]

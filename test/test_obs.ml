(* Observability tests: the tracing layer, its derived metrics, and the
   machine-readable surfaces built on them.

   The load-bearing invariants:
   - traced chunks exactly partition [1..N] for every policy and domain
     count (the executor dispatched everything, once);
   - dynamic policies' traced dispatch counts equal the closed-form
     chunk sequences of [lib/sched] — the paper's analytic counts,
     observed;
   - running with tracing changes no computed result bit;
   - the Chrome trace export is valid JSON; the --time line is stably
     parseable. *)

open Loopcoal
module B = Builder
module Exec = Runtime.Exec

let all_policies =
  [
    Policy.Static_block;
    Policy.Static_cyclic;
    Policy.Self_sched 1;
    Policy.Self_sched 7;
    Policy.Gss;
    Policy.Factoring;
    Policy.Trapezoid;
  ]

let domain_counts = [ 1; 2; 4 ]

(* One perfect doubly-parallel nest: a single fork-join region of
   23 * 11 = 253 coalesced iterations. *)
let nest_rows = 23
let nest_cols = 11
let nest_n = nest_rows * nest_cols

let single_nest =
  B.program
    ~arrays:[ B.array "W" [ nest_rows; nest_cols ] ]
    [
      B.doall "i" (B.int 1) (B.int nest_rows)
        [
          B.doall "j" (B.int 1) (B.int nest_cols)
            [ B.store "W" [ B.var "i"; B.var "j" ] B.(var "i" + var "j") ];
        ];
    ]

let traced_run ?(prog = single_nest) ~domains ~policy () =
  let tracer = Trace.create ~p:domains () in
  let outcome = Exec.run ~domains ~policy ~trace:tracer prog in
  (outcome, Trace.snapshot tracer)

(* ---------- partition invariant ---------- *)

let test_partition_all_policies () =
  List.iter
    (fun policy ->
      List.iter
        (fun domains ->
          (* Single-nest and multi-nest programs both tile exactly. *)
          List.iter
            (fun (what, prog) ->
              let _, tr = traced_run ~prog ~domains ~policy () in
              match Metrics.check_partition tr with
              | Ok () -> ()
              | Error m ->
                  Alcotest.failf "%s (%s, %d domains): %s" what
                    (Policy.name policy) domains m)
            [
              ("single nest", single_nest);
              ("matmul", Kernels.matmul ~ra:7 ~ca:5 ~cb:6);
            ])
        domain_counts)
    all_policies

let test_partition_detects_gap_and_overlap () =
  let fake chunks =
    let c = Trace.create ~p:2 () in
    Trace.fork_begin c ~policy:Policy.Gss ~n:10 ~p:2;
    List.iter
      (fun (start, len) ->
        Trace.record c ~worker:0 ~start ~len ~t0:0 ~t1:1)
      chunks;
    Trace.fork_end c;
    Trace.snapshot c
  in
  (match Metrics.check_partition (fake [ (1, 4); (6, 5) ]) with
  | Ok () -> Alcotest.fail "gap not detected"
  | Error _ -> ());
  (match Metrics.check_partition (fake [ (1, 6); (6, 5) ]) with
  | Ok () -> Alcotest.fail "overlap not detected"
  | Error _ -> ());
  (match Metrics.check_partition (fake [ (1, 4); (5, 6) ]) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "exact tiling rejected: %s" m);
  match Metrics.check_partition (fake [ (1, 4) ]) with
  | Ok () -> Alcotest.fail "truncation not detected"
  | Error _ -> ()

(* ---------- dispatch counts vs closed forms ---------- *)

let test_dispatch_counts_match_closed_forms () =
  List.iter
    (fun policy ->
      List.iter
        (fun domains ->
          if domains > 1 then begin
            let _, tr = traced_run ~domains ~policy () in
            let m = Metrics.of_trace tr in
            match m.Metrics.forks with
            | [ f ] ->
                Alcotest.(check int)
                  (Printf.sprintf "%s @ %d domains: n" (Policy.name policy)
                     domains)
                  nest_n f.Metrics.n;
                Alcotest.(check int)
                  (Printf.sprintf "%s @ %d domains: dispatches"
                     (Policy.name policy) domains)
                  (Chunks.count policy ~n:nest_n ~p:domains)
                  f.Metrics.chunks_dispatched;
                Alcotest.(check int)
                  (Printf.sprintf "%s @ %d domains: sync ops"
                     (Policy.name policy) domains)
                  (Chunks.sync_ops policy ~n:nest_n ~p:domains)
                  f.Metrics.sync_ops
            | forks ->
                Alcotest.failf "expected one fork region, got %d"
                  (List.length forks)
          end)
        domain_counts)
    all_policies

(* The three decaying policies, against their own chunk_sizes modules —
   not just through Chunks — so a drift in either shows up. *)
let test_decaying_policies_exact () =
  List.iter
    (fun (policy, closed_form) ->
      List.iter
        (fun domains ->
          let _, tr = traced_run ~domains ~policy () in
          let m = Metrics.of_trace tr in
          let f = List.hd m.Metrics.forks in
          Alcotest.(check int)
            (Printf.sprintf "%s @ %d: closed form" (Policy.name policy) domains)
            (closed_form ~n:nest_n ~p:domains)
            f.Metrics.chunks_dispatched)
        [ 2; 4 ])
    [
      (Policy.Gss, Gss.dispatch_count);
      (Policy.Factoring, Factoring.dispatch_count);
      (Policy.Trapezoid, Trapezoid.dispatch_count);
    ]

(* Traced chunk boundaries of the dynamic policies must be exactly the
   closed-form (start, len) sequence — not merely the same count. *)
let test_chunk_boundaries_match_sequence () =
  List.iter
    (fun policy ->
      let domains = 4 in
      let _, tr = traced_run ~domains ~policy () in
      let expected =
        match Chunks.dynamic_sequence policy ~n:nest_n ~p:domains with
        | Some seq -> seq
        | None -> Alcotest.fail "dynamic policy has no sequence"
      in
      let traced =
        Array.to_list tr.Trace.chunks
        |> List.map (fun (c : Trace.chunk) -> (c.Trace.start, c.Trace.len))
        |> List.sort compare
      in
      let expected = Array.to_list expected |> List.sort compare in
      Alcotest.(check (list (pair int int)))
        (Policy.name policy ^ ": chunk boundaries")
        expected traced)
    [ Policy.Self_sched 7; Policy.Gss; Policy.Factoring; Policy.Trapezoid ]

(* ---------- tracing is observation only ---------- *)

let outcomes_identical (a : Exec.outcome) (b : Exec.outcome) =
  a.Exec.arrays = b.Exec.arrays && a.Exec.scalars = b.Exec.scalars

let test_tracing_changes_nothing () =
  List.iter
    (fun name ->
      let prog = Option.get (Kernels.by_name name) () in
      List.iter
        (fun policy ->
          List.iter
            (fun domains ->
              let plain = Exec.run ~domains ~policy prog in
              let traced, _ = traced_run ~prog ~domains ~policy () in
              if not (outcomes_identical plain traced) then
                Alcotest.failf
                  "kernel %s (%s, %d domains): traced run differs" name
                  (Policy.name policy) domains)
            domain_counts)
        [ Policy.Static_block; Policy.Gss ])
    Kernels.all_names

(* ---------- metrics sanity ---------- *)

let test_metrics_accounting () =
  let _, tr = traced_run ~domains:4 ~policy:Policy.Factoring () in
  let m = Metrics.of_trace tr in
  let f = List.hd m.Metrics.forks in
  Alcotest.(check int) "iterations covered" nest_n f.Metrics.iterations;
  Alcotest.(check int) "worker arrays sized p" 4
    (Array.length f.Metrics.busy_ns);
  Alcotest.(check int) "chunk counts sum" f.Metrics.chunks_dispatched
    (Array.fold_left ( + ) 0 f.Metrics.chunks_per_worker);
  Alcotest.(check bool) "imbalance >= 1" true (f.Metrics.imbalance >= 1.0);
  Alcotest.(check bool) "imbalance <= p" true
    (f.Metrics.imbalance <= 4.0 +. 1e-9);
  let busy_total = Array.fold_left ( + ) 0 f.Metrics.busy_ns in
  Alcotest.(check bool) "busy time positive" true (busy_total > 0);
  Alcotest.(check bool) "wall >= max busy" true
    (f.Metrics.wall_ns >= Array.fold_left max 0 f.Metrics.busy_ns);
  Alcotest.(check bool) "sync/iter matches closed form" true
    (Float.abs
       (f.Metrics.sync_ops_per_iter
       -. float_of_int (Chunks.sync_ops Policy.Factoring ~n:nest_n ~p:4)
          /. float_of_int nest_n)
    < 1e-12)

let test_sequential_region_traced_as_block () =
  let _, tr = traced_run ~domains:1 ~policy:Policy.Gss () in
  match Array.to_list tr.Trace.forks with
  | [ f ] ->
      Alcotest.(check string) "seq fallback policy" "static-block"
        (Policy.name f.Trace.f_policy);
      Alcotest.(check int) "seq fallback p" 1 f.Trace.f_p;
      Alcotest.(check int) "one chunk" 1 (Array.length tr.Trace.chunks)
  | forks -> Alcotest.failf "expected one region, got %d" (List.length forks)

(* ---------- Chunks closed forms (property) ---------- *)

let prop_chunks_sequence_tiles =
  QCheck.Test.make ~count:200 ~name:"Chunks.dynamic_sequence tiles [1..n]"
    QCheck.(pair (int_range 0 400) (int_range 1 16))
    (fun (n, p) ->
      List.for_all
        (fun policy ->
          match Chunks.dynamic_sequence policy ~n ~p with
          | None -> true
          | Some seq ->
              let total = Array.fold_left (fun acc (_, l) -> acc + l) 0 seq in
              let sorted_ok =
                Array.to_list seq
                |> List.fold_left
                     (fun (ok, next) (start, len) ->
                       (ok && start = next && len > 0, next + len))
                     (true, 1)
                |> fst
              in
              total = n && sorted_ok
              && Array.length seq = Chunks.count policy ~n ~p
              && (n = 0 || Chunks.sync_ops policy ~n ~p = Array.length seq + p))
        [ Policy.Self_sched 1; Policy.Self_sched 5; Policy.Gss;
          Policy.Factoring; Policy.Trapezoid ])

let prop_chunks_static_counts =
  QCheck.Test.make ~count:200 ~name:"Chunks.count static policies"
    QCheck.(pair (int_range 0 400) (int_range 1 16))
    (fun (n, p) ->
      Chunks.count Policy.Static_block ~n ~p = min p n
      && Chunks.sync_ops Policy.Static_block ~n ~p = 0
      && Chunks.sync_ops Policy.Static_cyclic ~n ~p = 0
      &&
      let cyclic = Chunks.count Policy.Static_cyclic ~n ~p in
      if n = 0 then cyclic = 0 else if p = 1 then cyclic = 1 else cyclic = n)

(* ---------- Chrome trace export ---------- *)

(* A minimal JSON syntax checker: accepts exactly one value spanning the
   whole input. Enough to guarantee about://tracing will not reject the
   file on syntax. *)
let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let fail () = raise Exit in
  let peek () = if !pos >= n then fail () else s.[!pos] in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\n' | '\t' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let lit w =
    String.iter
      (fun c ->
        if peek () <> c then fail ();
        advance ())
      w
  in
  let number () =
    let start = !pos in
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      advance ()
    done;
    if !pos = start then fail ()
  in
  let string_ () =
    if peek () <> '"' then fail ();
    advance ();
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          advance ();
          go ()
      | _ ->
          advance ();
          go ()
    in
    go ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' -> obj ()
    | '[' -> arr ()
    | '"' -> string_ ()
    | 't' -> lit "true"
    | 'f' -> lit "false"
    | 'n' -> lit "null"
    | '-' | '0' .. '9' -> number ()
    | _ -> fail ()
  and obj () =
    advance ();
    skip_ws ();
    if peek () = '}' then advance ()
    else
      let rec members () =
        skip_ws ();
        string_ ();
        skip_ws ();
        if peek () <> ':' then fail ();
        advance ();
        value ();
        skip_ws ();
        match peek () with
        | ',' ->
            advance ();
            members ()
        | '}' -> advance ()
        | _ -> fail ()
      in
      members ()
  and arr () =
    advance ();
    skip_ws ();
    if peek () = ']' then advance ()
    else
      let rec elems () =
        value ();
        skip_ws ();
        match peek () with
        | ',' ->
            advance ();
            elems ()
        | ']' -> advance ()
        | _ -> fail ()
      in
      elems ()
  in
  match
    value ();
    skip_ws ();
    !pos = n
  with
  | b -> b
  | exception Exit -> false

let test_chrome_trace_valid_json () =
  List.iter
    (fun (domains, policy) ->
      let _, tr = traced_run ~domains ~policy () in
      let s = Chrome_trace.to_string tr in
      Alcotest.(check bool)
        (Printf.sprintf "valid JSON (%s, %d domains)" (Policy.name policy)
           domains)
        true (json_valid s);
      (* One event per chunk and fork, plus p+2 metadata events, all
         inside the traceEvents array. *)
      let count_needle needle =
        let rec go from acc =
          match String.index_from_opt s from '"' with
          | None -> acc
          | Some _ -> (
              match
                if from + String.length needle <= String.length s then
                  String.sub s from (String.length needle) = needle
                else false
              with
              | true -> go (from + 1) (acc + 1)
              | false -> go (from + 1) acc)
        in
        go 0 0
      in
      let chunk_events = count_needle "\"name\":\"chunk [" in
      Alcotest.(check int) "one event per chunk"
        (Array.length tr.Trace.chunks)
        chunk_events)
    [ (1, Policy.Static_block); (4, Policy.Gss) ]

let test_chrome_trace_escapes () =
  Alcotest.(check bool) "json self-test rejects garbage" false
    (json_valid "{\"a\": [1, 2,}");
  Alcotest.(check bool) "json self-test accepts object" true
    (json_valid "{\"a\": [1, 2.5e-3, \"x\\\"y\"], \"b\": null}\n")

(* ---------- the --time line and renderers ---------- *)

let test_time_line_format () =
  let line =
    Report.time_line ~engine:"compiled" ~domains:4 ~policy:"GSS"
      ~wall_s:0.001234
  in
  Alcotest.(check string) "exact format"
    "time engine=compiled domains=4 policy=GSS wall_s=0.001234" line;
  (* Machine-parseable: split on spaces, each field key=value. *)
  match String.split_on_char ' ' line with
  | "time" :: fields ->
      let kv =
        List.map
          (fun f ->
            match String.index_opt f '=' with
            | Some i ->
                ( String.sub f 0 i,
                  String.sub f (i + 1) (String.length f - i - 1) )
            | None -> Alcotest.failf "field %S is not key=value" f)
          fields
      in
      Alcotest.(check (list string)) "stable keys"
        [ "engine"; "domains"; "policy"; "wall_s" ]
        (List.map fst kv);
      Alcotest.(check int) "domains parses" 4
        (int_of_string (List.assoc "domains" kv));
      Alcotest.(check bool) "wall_s parses" true
        (float_of_string (List.assoc "wall_s" kv) > 0.0)
  | _ -> Alcotest.fail "line must start with 'time '"

let test_time_suffix_contract () =
  Alcotest.(check string) "suffix format"
    " opt=2 plan_cache=hit"
    (Report.time_suffix ~opt:2 ~plan_cache:"hit" ());
  Alcotest.(check string) "extra fields append in order"
    " opt=0 plan_cache=off profile=on x=1"
    (Report.time_suffix ~extra:[ ("profile", "on"); ("x", "1") ] ~opt:0
       ~plan_cache:"off" ());
  (* The full --time line: stable prefix, suffix appended — a prefix
     consumer parsing up to wall_s= keeps working as fields grow. *)
  let line =
    Report.time_line ~engine:"bytecode" ~domains:2 ~policy:"GSS"
      ~wall_s:0.5
    ^ Report.time_suffix ~opt:2 ~plan_cache:"miss" ()
  in
  Alcotest.(check string) "pinned full line"
    "time engine=bytecode domains=2 policy=GSS wall_s=0.500000 opt=2 \
     plan_cache=miss"
    line;
  (* The tapecheck field the CLI appends under --time rides the same
     append-only contract: existing consumers see an unchanged prefix. *)
  let validated =
    Report.time_line ~engine:"bytecode" ~domains:2 ~policy:"GSS"
      ~wall_s:0.5
    ^ Report.time_suffix
        ~extra:[ ("tapecheck", "ok") ]
        ~opt:2 ~plan_cache:"off" ()
  in
  Alcotest.(check string) "pinned line with tapecheck field"
    "time engine=bytecode domains=2 policy=GSS wall_s=0.500000 opt=2 \
     plan_cache=off tapecheck=ok"
    validated;
  (* The search field ([loopc run --search]) appends after every earlier
     extra: off (no search), hit (warm-cache recipe replay) or the
     budget that was enumerated. Same append-only contract. *)
  let searched =
    Report.time_line ~engine:"bytecode" ~domains:2 ~policy:"GSS"
      ~wall_s:0.5
    ^ Report.time_suffix
        ~extra:[ ("tapecheck", "off"); ("search", "hit") ]
        ~opt:2 ~plan_cache:"hit" ()
  in
  Alcotest.(check string) "pinned line with search field"
    "time engine=bytecode domains=2 policy=GSS wall_s=0.500000 opt=2 \
     plan_cache=hit tapecheck=off search=hit"
    searched

(* ---------- metrics registry ---------- *)

let test_registry_counters_gauges () =
  let c = Registry.counter "test_obs.ctr" in
  let c' = Registry.counter "test_obs.ctr" in
  Registry.incr c;
  Registry.add c' 4;
  Alcotest.(check int) "same name, same counter" 5 (Registry.value c);
  let g = Registry.gauge "test_obs.gauge" in
  Registry.set g 2.5;
  Alcotest.(check (float 0.0)) "gauge last-write-wins" 2.5 (Registry.get g);
  (* Re-registering a name as a different kind is a programming error. *)
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument "Registry: metric kind mismatch for test_obs.ctr")
    (fun () -> ignore (Registry.gauge "test_obs.ctr"))

let test_registry_histogram_percentiles () =
  let h = Registry.histogram "test_obs.hist" in
  (* 90 small values in [1,1] and 10 large in [1024, 2047]: p50 lands in
     the small bucket, p99 in the large one; percentiles report the
     matched bucket's lower bound. *)
  for _ = 1 to 90 do
    Registry.observe h 1
  done;
  for i = 1 to 10 do
    Registry.observe h (1024 + i)
  done;
  let s = Registry.hstats h in
  Alcotest.(check int) "count" 100 s.Registry.count;
  Alcotest.(check int) "sum" (90 + (10 * 1024) + 55) s.Registry.sum;
  Alcotest.(check int) "p50 lower bound" 1 s.Registry.p50;
  Alcotest.(check int) "p99 lower bound" 1024 s.Registry.p99;
  Alcotest.(check int) "max exact" 1034 s.Registry.max_v;
  (* Empty histogram: all-zero stats, no division by zero. *)
  let e = Registry.hstats (Registry.histogram "test_obs.hist_empty") in
  Alcotest.(check int) "empty count" 0 e.Registry.count;
  Alcotest.(check int) "empty p99" 0 e.Registry.p99

let test_registry_snapshot_and_json () =
  ignore (Registry.counter "test_obs.snap_a" : Registry.counter);
  ignore (Registry.histogram "test_obs.snap_b" : Registry.histogram);
  let names = List.map fst (Registry.snapshot ()) in
  Alcotest.(check bool) "snapshot sorted" true
    (List.sort String.compare names = names);
  Alcotest.(check bool) "snapshot has both" true
    (List.mem "test_obs.snap_a" names && List.mem "test_obs.snap_b" names);
  Alcotest.(check bool) "registry dump is valid JSON" true
    (json_valid (Registry.to_json ()));
  Alcotest.(check bool) "render mentions metrics" true
    (String.length (Registry.render ()) > 0)

let test_registry_reset_via_counters_facade () =
  (* The legacy [Counters] facade now rides on the registry, and its
     [reset] resets every metric, not just the plan-cache pair. *)
  Counters.plan_cache_hit ();
  Counters.plan_cache_miss ();
  let c = Registry.counter "test_obs.reset_me" in
  let h = Registry.histogram "test_obs.reset_hist" in
  Registry.incr c;
  Registry.observe h 42;
  Alcotest.(check bool) "facade sees hits" true
    (fst (Counters.plan_cache_stats ()) > 0);
  Counters.reset ();
  Alcotest.(check (pair int int)) "plan cache stats zeroed" (0, 0)
    (Counters.plan_cache_stats ());
  Alcotest.(check int) "other counters zeroed" 0 (Registry.value c);
  Alcotest.(check int) "histograms zeroed" 0 (Registry.hstats h).Registry.count

let test_measured_gantt_rows () =
  let _, tr = traced_run ~domains:4 ~policy:Policy.Trapezoid () in
  let f = (Metrics.of_trace tr).Metrics.forks |> List.hd in
  let g = Report.measured_gantt ~width:40 tr ~epoch:f.Metrics.epoch in
  let rows =
    String.split_on_char '\n' g
    |> List.filter (fun l -> String.length l > 0 && l.[0] = 'p')
  in
  (* Every forked worker gets a row, even one that executed nothing. *)
  Alcotest.(check int) "one row per worker" 4 (List.length rows)

let test_side_by_side () =
  let joined = Report.side_by_side "aa\nb\n" "xxx\nyyyy\nz\n" in
  Alcotest.(check (list string)) "lines paired and padded"
    [ "aa   xxx"; "b    yyyy"; "     z"; "" ]
    (String.split_on_char '\n' joined)

let test_model_check_grades () =
  let side speedup = { Model_check.speedup; dispatches = 10; imbalance = 1.0 } in
  let s =
    Model_check.score ~kernel:"k" ~policy:"GSS" ~domains:4
      ~predicted:(side 4.0) ~measured:(side 3.0)
  in
  Alcotest.(check string) "within 2x is good" "good" s.Model_check.grade;
  Alcotest.(check bool) "dispatches exact" true s.Model_check.dispatches_exact;
  let s =
    Model_check.score ~kernel:"k" ~policy:"GSS" ~domains:4
      ~predicted:(side 4.0) ~measured:(side 0.5)
  in
  Alcotest.(check string) "8x off is poor" "poor" s.Model_check.grade;
  (* Table and summary render without raising. *)
  Alcotest.(check bool) "summary mentions counts" true
    (String.length (Model_check.summary [ s ]) > 0);
  ignore (Table.render (Model_check.table [ s ]))

let suite =
  [
    Alcotest.test_case "chunks partition [1..N] (all policies x domains)"
      `Quick test_partition_all_policies;
    Alcotest.test_case "partition check detects gaps/overlaps" `Quick
      test_partition_detects_gap_and_overlap;
    Alcotest.test_case "dispatch counts match closed forms" `Quick
      test_dispatch_counts_match_closed_forms;
    Alcotest.test_case "GSS/factoring/TSS exact dispatch counts" `Quick
      test_decaying_policies_exact;
    Alcotest.test_case "chunk boundaries match closed-form sequence" `Quick
      test_chunk_boundaries_match_sequence;
    Alcotest.test_case "tracing changes no result bit" `Quick
      test_tracing_changes_nothing;
    Alcotest.test_case "metrics accounting" `Quick test_metrics_accounting;
    Alcotest.test_case "sequential fallback traced as static block" `Quick
      test_sequential_region_traced_as_block;
    Alcotest.test_case "chrome trace is valid JSON" `Quick
      test_chrome_trace_valid_json;
    Alcotest.test_case "json checker self-test" `Quick
      test_chrome_trace_escapes;
    Alcotest.test_case "--time line format is stable" `Quick
      test_time_line_format;
    Alcotest.test_case "--time suffix contract" `Quick
      test_time_suffix_contract;
    Alcotest.test_case "registry counters and gauges" `Quick
      test_registry_counters_gauges;
    Alcotest.test_case "registry histogram percentiles" `Quick
      test_registry_histogram_percentiles;
    Alcotest.test_case "registry snapshot and JSON dump" `Quick
      test_registry_snapshot_and_json;
    Alcotest.test_case "reset clears all metrics (Counters facade)" `Quick
      test_registry_reset_via_counters_facade;
    Alcotest.test_case "measured gantt has one row per worker" `Quick
      test_measured_gantt_rows;
    Alcotest.test_case "side-by-side pairing" `Quick test_side_by_side;
    Alcotest.test_case "model check grading" `Quick test_model_check_grades;
    Gen.to_alcotest prop_chunks_sequence_tiles;
    Gen.to_alcotest prop_chunks_static_counts;
  ]

(* Runtime tests: the staging compiler and the multi-domain executor.

   The load-bearing property: for every built-in kernel and every
   scheduling policy, parallel execution on 1, 2 and 4 domains produces
   arrays bit-identical to the sequential reference interpreter —
   including reduction kernels, whose per-domain partials merge exactly
   because the test reductions accumulate integral values (FP addition
   of integers is exact, so any association agrees bit-for-bit). *)

open Loopcoal
module B = Builder
module Exec = Runtime.Exec
module Compile = Runtime.Compile
module Pool = Runtime.Pool

let all_policies =
  [
    Policy.Static_block;
    Policy.Static_cyclic;
    Policy.Self_sched 1;
    Policy.Self_sched 7;
    Policy.Gss;
    Policy.Factoring;
    Policy.Trapezoid;
  ]

let domain_counts = [ 1; 2; 4 ]

let check_against_interp ?(compare_scalars = false) ~what prog ~domains
    ~policy =
  let st = Eval.run prog in
  let outcome = Exec.run ~domains ~policy prog in
  if not (Exec.agrees_with_interpreter ~compare_scalars outcome st) then
    Alcotest.failf "%s: parallel (%d domains, %s) differs from interpreter"
      what domains (Policy.name policy)

(* ---------- every kernel x every policy x 1/2/4 domains ---------- *)

let test_kernels_all_policies () =
  List.iter
    (fun name ->
      let prog = Option.get (Kernels.by_name name) () in
      List.iter
        (fun policy ->
          List.iter
            (fun domains ->
              (* Sequential staging must reproduce the full store exactly;
                 with domains > 1, arrays must still be bit-identical. *)
              check_against_interp ~compare_scalars:(domains = 1)
                ~what:("kernel " ^ name) prog ~domains ~policy)
            domain_counts)
        all_policies)
    Kernels.all_names

(* ---------- reduction kernels ---------- *)

(* Integral sum over a depth-2 DOALL nest: exact under any association,
   so the domain-ordered merge must agree bit-for-bit. *)
let sum_nest =
  B.program
    ~scalars:[ B.real_scalar "s" ]
    [
      B.doall "i" (B.int 1) (B.int 37)
        [
          B.doall "j" (B.int 1) (B.int 23)
            [ B.assign "s" B.(var "s" + (var "i" * var "j")) ];
        ];
    ]

(* Integral product: s starts at 1 and doubles 40 times (exact in
   double precision). *)
let product_loop =
  B.program
    ~scalars:[ B.real_scalar ~init:1.0 "s" ]
    [
      B.doall "i" (B.int 1) (B.int 40)
        [ B.assign "s" B.(var "s" * real 2.0) ];
    ]

(* A reduction alongside independent array writes, three levels deep. *)
let mixed_reduction =
  B.program
    ~arrays:[ B.array "U" [ 4; 3; 3 ] ]
    ~scalars:[ B.real_scalar "acc" ]
    [
      B.doall "i" (B.int 1) (B.int 4)
        [
          B.doall "j" (B.int 1) (B.int 3)
            [
              B.doall "k" (B.int 1) (B.int 3)
                [
                  B.store "U"
                    [ B.var "i"; B.var "j"; B.var "k" ]
                    B.((var "i" * int 100) + (var "j" * int 10) + var "k");
                  B.assign "acc"
                    B.(var "acc" + (var "i" + var "j" + var "k"));
                ];
            ];
        ];
    ]

let test_reduction_kernels () =
  List.iter
    (fun (what, prog) ->
      List.iter
        (fun policy ->
          List.iter
            (fun domains ->
              check_against_interp ~compare_scalars:true ~what prog ~domains
                ~policy)
            domain_counts)
        all_policies)
    [
      ("sum nest", sum_nest);
      ("product loop", product_loop);
      ("mixed reduction", mixed_reduction);
    ]

(* ---------- coalesced IR through the runtime ---------- *)

let test_coalesced_program () =
  let prog = Kernels.matmul ~ra:7 ~ca:5 ~cb:6 in
  let coalesced, n = Coalesce.apply_all_program prog in
  Alcotest.(check bool) "something coalesced" true (n > 0);
  let st = Eval.run prog in
  List.iter
    (fun domains ->
      let outcome = Exec.run ~domains ~policy:Policy.Gss coalesced in
      if not (Exec.agrees_with_interpreter outcome st) then
        Alcotest.failf
          "coalesced matmul (%d domains) differs from original interpreter"
          domains)
    domain_counts

(* ---------- error parity with the interpreter ---------- *)

let interp_errors prog =
  match Eval.run prog with
  | _ -> false
  | exception Eval.Runtime_error _ -> true

let compiled_errors prog =
  match Exec.run ~domains:1 prog with
  | _ -> false
  | exception Compile.Error _ -> true

let test_error_parity () =
  let cases =
    [
      ( "div by zero",
        B.program
          ~scalars:[ B.int_scalar "s" ]
          [ B.assign "s" B.(int 1 / int 0) ] );
      ( "store out of bounds",
        B.program
          ~arrays:[ B.array "A" [ 4 ] ]
          [ B.store "A" [ B.int 5 ] (B.real 1.0) ] );
      ( "load out of bounds in loop",
        B.program
          ~arrays:[ B.array "A" [ 4 ] ]
          [
            B.doall "i" (B.int 1) (B.int 9)
              [ B.store "A" [ B.var "i" ] (B.real 0.5) ];
          ] );
      ( "non-positive step",
        B.program
          [ B.for_ ~step:(B.int 0) "i" (B.int 1) (B.int 3) [] ] );
      ( "mod by zero",
        B.program
          ~scalars:[ B.int_scalar "s" ]
          [ B.assign "s" B.(int 7 % int 0) ] );
    ]
  in
  List.iter
    (fun (what, prog) ->
      Alcotest.(check bool) (what ^ ": interpreter errors") true
        (interp_errors prog);
      Alcotest.(check bool) (what ^ ": compiled errors") true
        (compiled_errors prog))
    cases;
  (* Parallel faults must propagate through the join, too. *)
  let oob =
    B.program
      ~arrays:[ B.array "A" [ 4 ] ]
      [
        B.doall "i" (B.int 1) (B.int 9)
          [ B.store "A" [ B.var "i" ] (B.real 0.5) ];
      ]
  in
  Alcotest.(check bool) "parallel bounds fault propagates" true
    (match Exec.run ~domains:2 ~policy:(Policy.Self_sched 1) oob with
    | _ -> false
    | exception Compile.Error _ -> true)

let test_assign_to_index_rejected () =
  let prog =
    B.program
      ~scalars:[ B.int_scalar "i" ]
      [ B.doall "i" (B.int 1) (B.int 3) [ B.assign "i" (B.int 0) ] ]
  in
  match Compile.compile_result prog with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "assignment to loop index should be rejected"

(* ---------- pool ---------- *)

let test_pool_runs_all_workers () =
  Pool.with_pool 4 (fun pool ->
      let hits = Array.make 4 0 in
      Pool.run pool (fun q -> hits.(q) <- hits.(q) + 1);
      Pool.run pool (fun q -> hits.(q) <- hits.(q) + 1);
      Alcotest.(check (array int)) "each worker ran twice" [| 2; 2; 2; 2 |] hits)

let test_pool_propagates_exception () =
  Pool.with_pool 3 (fun pool ->
      match Pool.run pool (fun q -> if q = 2 then failwith "boom") with
      | () -> Alcotest.fail "expected exception"
      | exception Failure m -> Alcotest.(check string) "message" "boom" m);
  (* The pool must survive a failed run. *)
  Pool.with_pool 2 (fun pool ->
      (match Pool.run pool (fun _ -> failwith "x") with
      | () -> ()
      | exception Failure _ -> ());
      let ok = ref false in
      Pool.run pool (fun q -> if q = 0 then ok := true);
      Alcotest.(check bool) "usable after failure" true !ok)

(* ---------- properties ---------- *)

(* Staging correctness: arbitrary programs, sequential compiled execution
   must reproduce the interpreter's full final store. *)
let prop_compiled_seq_equals_interp =
  QCheck.Test.make ~count:60 ~name:"compiled(1 domain) = interpreter"
    Gen.arbitrary_program (fun prog ->
      let st = Eval.run prog in
      let outcome = Exec.run ~domains:1 prog in
      Exec.agrees_with_interpreter ~compare_scalars:true outcome st)

(* Conflict-free rectangular DOALL nests: parallel execution under every
   policy and 1/2/4 domains is bit-identical on arrays. Writes target
   distinct elements by construction (subscripts are exactly the nest
   indexes), so the DOALL annotation is genuinely valid. *)
let doall_nest_gen : Ast.program QCheck.Gen.t =
  let open QCheck.Gen in
  let* depth = int_range 1 3 in
  let dims =
    match depth with 1 -> [ 8 ] | 2 -> [ 6; 6 ] | _ -> [ 4; 3; 3 ]
  in
  let target = match depth with 1 -> "V" | 2 -> "W" | _ -> "U" in
  let indices =
    List.filteri (fun k _ -> k < depth) [ "i"; "j"; "k" ]
  in
  let* sizes = flatten_l (List.map (fun d -> int_range 1 d) dims) in
  (* Loads only from arrays other than the store target: reading the
     written array would be a cross-iteration dependence, making the
     DOALL annotation (and hence order-independence) invalid. *)
  let other_ref =
    let sources = List.filter (fun (n, _) -> n <> target) Gen.array_dims in
    let* name, adims = oneofl sources in
    let+ subs =
      flatten_l (List.map (fun d -> map (Gen.clamp d) (Gen.int_expr indices)) adims)
    in
    Ast.Load (name, subs)
  in
  let+ rhs =
    frequency
      [
        (2, Gen.int_expr indices);
        ( 3,
          let* l = other_ref in
          let+ extra = Gen.int_expr indices in
          Ast.Bin (Add, l, extra) );
      ]
  in
  let body =
    [ Ast.Assign (Elem (target, List.map (fun v -> Ast.Var v) indices), rhs) ]
  in
  let rec build idxs szs : Ast.stmt =
    match (idxs, szs) with
    | [ ix ], [ n ] ->
        For
          {
            index = ix;
            lo = Int 1;
            hi = Int n;
            step = Int 1;
            par = Parallel;
            body;
          }
    | ix :: idxs, n :: szs ->
        For
          {
            index = ix;
            lo = Int 1;
            hi = Int n;
            step = Int 1;
            par = Parallel;
            body = [ build idxs szs ];
          }
    | _ -> assert false
  in
  {
    Ast.arrays =
      List.map
        (fun (n, dims) -> { Ast.arr_name = n; dims })
        [ ("W", [ 6; 6 ]); ("V", [ 8 ]); ("U", [ 4; 3; 3 ]) ];
    scalars = [];
    body = [ build indices sizes ];
  }

let arbitrary_doall_nest =
  QCheck.make ~print:Pretty.program_to_string doall_nest_gen

let prop_parallel_equals_interp =
  QCheck.Test.make ~count:25
    ~name:"parallel DOALL nest = interpreter (all policies, 1/2/4 domains)"
    arbitrary_doall_nest (fun prog ->
      let st = Eval.run prog in
      List.for_all
        (fun policy ->
          List.for_all
            (fun domains ->
              let outcome = Exec.run ~domains ~policy prog in
              Exec.agrees_with_interpreter outcome st)
            domain_counts)
        all_policies)

let suite =
  [
    Alcotest.test_case "kernels x policies x domains" `Quick
      test_kernels_all_policies;
    Alcotest.test_case "reduction kernels bit-identical" `Quick
      test_reduction_kernels;
    Alcotest.test_case "coalesced IR through runtime" `Quick
      test_coalesced_program;
    Alcotest.test_case "error parity with interpreter" `Quick
      test_error_parity;
    Alcotest.test_case "assign to index rejected" `Quick
      test_assign_to_index_rejected;
    Alcotest.test_case "pool runs all workers" `Quick
      test_pool_runs_all_workers;
    Alcotest.test_case "pool propagates exceptions" `Quick
      test_pool_propagates_exception;
    Gen.to_alcotest prop_compiled_seq_equals_interp;
    Gen.to_alcotest prop_parallel_equals_interp;
  ]

(* Transformation-search tests.

   The invariants that make search safe to leave on:
   - recipe strings round-trip exactly (they are the plan-cache replay
     format);
   - the winner's program computes bit-identical results to the input
     across engines and domain counts (searched plans never change
     observable behaviour; FP-reassociating candidates only exist
     behind the opt-in flag);
   - the identity recipe always survives, so search never picks
     something its own model considers worse than doing nothing;
   - verifier-pruned candidates are counted and carry a reason. *)

open Loopcoal
module Exec = Runtime.Exec
module Search = Loopcoal_transform.Search
module Recipe = Loopcoal_transform.Recipe

let ctx = Search.default_ctx ~p:4 ()

(* ---------- recipe round-trip ---------- *)

let some_recipes : (string * Recipe.t) list =
  [
    ("id", []);
    ("hoist", [ Recipe.Hoist ]);
    ("interchange", [ Recipe.Interchange ]);
    ("distribute", [ Recipe.Distribute ]);
    ("fuse", [ Recipe.Fuse ]);
    ("tile(8)", [ Recipe.Tile 8 ]);
    ("chunked(64)", [ Recipe.Chunked 64 ]);
    ("coalesce(ceiling)", [ Recipe.Coalesce Index_recovery.Ceiling ]);
    ("coalesce(divmod)", [ Recipe.Coalesce Index_recovery.Div_mod ]);
    ("coalesce(incremental)", [ Recipe.Coalesce Index_recovery.Incremental ]);
    ( "preduce(c,pi_val,4)",
      [ Recipe.Preduce { pr_index = "c"; pr_scalar = "pi_val"; pr_procs = 4 } ]
    );
    ( "distribute+interchange+tile(4)",
      [ Recipe.Distribute; Recipe.Interchange; Recipe.Tile 4 ] );
  ]

let test_recipe_round_trip () =
  List.iter
    (fun (s, r) ->
      Alcotest.(check string) ("to_string " ^ s) s (Recipe.to_string r);
      match Recipe.of_string s with
      | Ok r' ->
          Alcotest.(check bool) ("of_string " ^ s) true (r = r')
      | Error m -> Alcotest.failf "of_string %S failed: %s" s m)
    some_recipes

let test_recipe_rejects_garbage () =
  List.iter
    (fun s ->
      match Recipe.of_string s with
      | Ok _ -> Alcotest.failf "recipe %S should not parse" s
      | Error _ -> ())
    [
      "";
      "frobnicate";
      "tile()";
      "tile(0)";
      "tile(-3)";
      "tile(x)";
      "chunked(1.5)";
      "coalesce(odometer)";
      "preduce(c,pi_val)";
      "preduce(1c,pi,4)";
      "hoist+";
      "id+hoist";
    ]

let atom_pool =
  [
    Recipe.Hoist;
    Recipe.Interchange;
    Recipe.Distribute;
    Recipe.Fuse;
    Recipe.Tile 4;
    Recipe.Tile 32;
    Recipe.Chunked 16;
    Recipe.Coalesce Index_recovery.Ceiling;
    Recipe.Coalesce Index_recovery.Div_mod;
    Recipe.Preduce { pr_index = "i"; pr_scalar = "s_1"; pr_procs = 8 };
  ]

let prop_recipe_round_trip =
  QCheck.Test.make ~count:200 ~name:"Recipe.of_string (to_string r) = r"
    QCheck.(list_of_size (Gen.int_range 0 5) (int_range 0 9))
    (fun idxs ->
      let r = List.map (List.nth atom_pool) idxs in
      match Recipe.of_string (Recipe.to_string r) with
      | Ok r' -> r = r'
      | Error _ -> false)

(* ---------- search basics ---------- *)

let test_identity_always_survives () =
  List.iter
    (fun name ->
      let p = Option.get (Kernels.by_name name) () in
      let rp = Search.run ~budget:16 ~label:name ~ctx p in
      let id_status =
        List.find_map
          (fun (c : Search.candidate) ->
            if Recipe.is_identity c.Search.cd_recipe then
              Some c.Search.cd_status
            else None)
          rp.Search.rp_candidates
      in
      match id_status with
      | Some (Search.Winner | Search.Scored) -> ()
      | Some _ -> Alcotest.failf "%s: identity was pruned" name
      | None -> Alcotest.failf "%s: identity not considered" name)
    Kernels.all_names

let test_budget_respected () =
  let p = Kernels.matmul ~ra:6 ~ca:5 ~cb:4 in
  List.iter
    (fun budget ->
      let rp = Search.run ~budget ~ctx p in
      Alcotest.(check bool)
        (Printf.sprintf "budget %d respected" budget)
        true
        (rp.Search.rp_considered <= max 1 budget
        && rp.Search.rp_considered >= 1))
    [ -3; 0; 1; 3; 16; 100 ]

let test_winner_never_worse_than_identity () =
  List.iter
    (fun name ->
      let p = Option.get (Kernels.by_name name) () in
      let rp = Search.run ~budget:16 ~label:name ~ctx p in
      let pred r =
        List.find_map
          (fun (c : Search.candidate) ->
            if c.Search.cd_recipe = r then c.Search.cd_predicted_ns else None)
          rp.Search.rp_candidates
      in
      match (pred rp.Search.rp_winner, pred Recipe.identity) with
      | Some w, Some id ->
          Alcotest.(check bool)
            (name ^ ": winner <= identity under the model")
            true (w <= id)
      | _ -> Alcotest.failf "%s: missing predictions" name)
    Kernels.all_names

let test_relax_search_finds_hoist () =
  let p = Kernels.relax ~n:24 ~steps:12 in
  let rp = Search.run ~budget:16 ~label:"relax" ~ctx p in
  Alcotest.(check bool) "relax winner is not identity" false
    (Recipe.is_identity rp.Search.rp_winner)

let test_pi_preduce_needs_opt_in () =
  let p = Kernels.calculate_pi ~intervals:1000 in
  let has_preduce rp =
    List.exists
      (fun (c : Search.candidate) ->
        List.exists
          (function Recipe.Preduce _ -> true | _ -> false)
          c.Search.cd_recipe)
      rp.Search.rp_candidates
  in
  let off = Search.run ~budget:20 ~ctx p in
  Alcotest.(check bool) "no preduce candidate without fp_reassoc" false
    (has_preduce off);
  let on = Search.run ~budget:20 ~fp_reassoc:true ~ctx p in
  Alcotest.(check bool) "preduce candidate with fp_reassoc" true
    (has_preduce on);
  Alcotest.(check bool) "pi winner reassociates the reduction" true
    (List.exists
       (function Recipe.Preduce _ -> true | _ -> false)
       on.Search.rp_winner)

let test_pruned_candidates_counted_with_reason () =
  let p = Kernels.matmul ~ra:8 ~ca:6 ~cb:7 in
  let rp = Search.run ~budget:20 ~ctx p in
  let pruned =
    List.filter
      (fun (c : Search.candidate) ->
        match c.Search.cd_status with Search.Pruned _ -> true | _ -> false)
      rp.Search.rp_candidates
  in
  Alcotest.(check int) "rp_pruned matches statuses"
    (List.length pruned) rp.Search.rp_pruned;
  List.iter
    (fun (c : Search.candidate) ->
      match c.Search.cd_status with
      | Search.Pruned why ->
          Alcotest.(check bool)
            (Recipe.to_string c.Search.cd_recipe ^ ": reason non-empty")
            true
            (String.length why > 0)
      | _ -> ())
    pruned

let test_search_metrics_flow () =
  let before = Registry.value (Registry.counter "search.candidates") in
  let p = Kernels.stencil ~n:10 in
  let rp = Search.run ~budget:8 ~ctx p in
  let after = Registry.value (Registry.counter "search.candidates") in
  Alcotest.(check int) "search.candidates counts considered"
    rp.Search.rp_considered (after - before);
  Alcotest.(check bool) "search.win_ns observed" true
    ((Registry.hstats (Registry.histogram "search.win_ns")).Registry.count > 0)

(* ---------- the winner changes no observable result ---------- *)

let differential_kernels =
  [ "matmul"; "stencil"; "transpose"; "relax"; "gauss_jordan"; "swap" ]

let test_searched_results_bit_identical () =
  List.iter
    (fun name ->
      let p = Option.get (Kernels.by_name name) () in
      let rp = Search.run ~budget:16 ~label:name ~ctx p in
      (* interpreter-level equivalence of the winning program *)
      (match Pipeline.observably_equal ~reference:p rp.Search.rp_program with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: searched program differs: %s" name m);
      (* engine x domains: original and searched agree bit for bit *)
      List.iter
        (fun engine ->
          List.iter
            (fun domains ->
              let a = Exec.run ~domains ~engine p in
              let b = Exec.run ~domains ~engine rp.Search.rp_program in
              if a.Exec.arrays <> b.Exec.arrays then
                Alcotest.failf "%s: arrays differ (%d domains)" name domains;
              (* searched programs may introduce temporaries; the
                 original program's scalars must be unchanged *)
              List.iter
                (fun (s : Ast.scalar_decl) ->
                  let v o = List.assoc_opt s.Ast.sc_name o.Exec.scalars in
                  if v a <> v b then
                    Alcotest.failf "%s: scalar %s differs (%d domains)" name
                      s.Ast.sc_name domains)
                p.Ast.scalars)
            [ 1; 2; 4 ])
        [ Exec.Closure; Exec.Bytecode ])
    differential_kernels

let test_pi_preduce_close_to_reference () =
  let intervals = 1000 in
  let p = Kernels.calculate_pi ~intervals in
  let rp = Search.run ~budget:20 ~fp_reassoc:true ~ctx p in
  let out = Exec.run ~domains:4 rp.Search.rp_program in
  match List.assoc "pi_val" out.Exec.scalars with
  | Eval.Vreal got ->
      let want = Kernels.calculate_pi_reference ~intervals in
      Alcotest.(check bool) "pi within reassociation tolerance" true
        (Float.abs (got -. want) < 1e-9)
  | _ -> Alcotest.fail "pi_val is not a real"

(* ---------- measure mode ---------- *)

let test_measure_mode_picks_measured_winner () =
  let p = Kernels.relax ~n:24 ~steps:12 in
  (* a fake measurement that inverts the model's preference: identity is
     "fastest", so measure mode must return identity *)
  let measure p' = if p' = p then 1.0 else 1e9 in
  let rp =
    Search.run ~budget:16 ~mode:(Search.Measure 3) ~measure ~ctx p
  in
  Alcotest.(check bool) "measured winner is identity" true
    (Recipe.is_identity rp.Search.rp_winner);
  (* finalists carry measured medians *)
  Alcotest.(check bool) "identity has a measured time" true
    (List.exists
       (fun (c : Search.candidate) ->
         Recipe.is_identity c.Search.cd_recipe
         && c.Search.cd_measured_ns <> None)
       rp.Search.rp_candidates)

(* ---------- calibration profile ---------- *)

let test_first_region_profile () =
  match Search.first_region_profile (Kernels.matmul ~ra:8 ~ca:6 ~cb:7) with
  | Some (n, ops) ->
      Alcotest.(check int) "first region is the 8x6 init nest" 48 n;
      Alcotest.(check bool) "per-iteration ops positive" true (ops > 0.0)
  | None -> Alcotest.fail "matmul has a parallel region"

let test_first_region_profile_serial_program () =
  Alcotest.(check bool) "pi has no parallel region" true
    (Search.first_region_profile (Kernels.calculate_pi ~intervals:100) = None)

(* ---------- explain renderers ---------- *)

let test_explain_renders () =
  let p = Kernels.matmul ~ra:8 ~ca:6 ~cb:7 in
  let rp = Search.run ~budget:20 ~label:"matmul" ~ctx p in
  let text = Search.explain_to_string rp in
  let has needle s =
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "header names the program" true
    (has "search(matmul): budget=20 mode=model p=4 policy=static-block" text);
  Alcotest.(check bool) "identity row present" true (has "\n  id " text);
  Alcotest.(check bool) "winner line present" true (has "winner=" text);
  List.iter
    (fun (c : Search.candidate) ->
      Alcotest.(check bool)
        (Recipe.to_string c.Search.cd_recipe ^ " row present")
        true
        (has (Recipe.to_string c.Search.cd_recipe) text))
    rp.Search.rp_candidates;
  (* JSON form parses and mentions every candidate *)
  let json = Search.explain_to_json rp in
  Alcotest.(check bool) "explain json valid" true (Test_obs.json_valid json);
  Alcotest.(check bool) "json names the winner" true
    (has
       (Printf.sprintf "\"winner\": \"%s\"" (Recipe.to_string rp.Search.rp_winner))
       json)

(* ---------- warm-cache recipe replay ---------- *)

let with_temp_cache_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "loopc_search_test_%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Fun.protect
    ~finally:(fun () ->
      (try
         Array.iter
           (fun name -> try Sys.remove (Filename.concat dir name) with _ -> ())
           (Sys.readdir dir)
       with _ -> ());
      try Unix.rmdir dir with _ -> ())
    (fun () -> f dir)

let test_warm_cache_recipe_replay () =
  with_temp_cache_dir @@ fun dir ->
  let p = Kernels.relax ~n:24 ~steps:12 in
  let key =
    Runtime.Plancache.key ~sanitize:false ~opt_level:2 ~salt:"search:bytecode" p
  in
  (* cold run: search, record the winner — what [loopc run --search] does *)
  let rp = Search.run ~budget:16 ~label:"relax" ~ctx p in
  Alcotest.(check bool) "relax winner is not the identity" false
    (Recipe.is_identity rp.Search.rp_winner);
  let cold = Runtime.Plancache.create ~dir () in
  Runtime.Plancache.store_recipe cold key (Recipe.to_string rp.Search.rp_winner);
  (* warm run: a fresh cache instance (fresh process) replays the recipe
     from disk with zero enumeration — the candidates counter must not
     move on this path *)
  let candidates = Registry.counter "search.candidates" in
  let before = Registry.value candidates in
  let warm = Runtime.Plancache.create ~dir () in
  (match Runtime.Plancache.find_recipe warm key with
  | None -> Alcotest.fail "warm cache missed the stored recipe"
  | Some s -> (
      match Recipe.of_string s with
      | Error m -> Alcotest.failf "stored recipe unparsable: %s" m
      | Ok r -> (
          match Recipe.apply r p with
          | Error m -> Alcotest.failf "stored recipe failed to replay: %s" m
          | Ok p' ->
              Alcotest.(check bool) "replayed program = searched program" true
                (p' = rp.Search.rp_program);
              let a = Exec.run ~domains:2 p
              and b = Exec.run ~domains:2 p' in
              Alcotest.(check bool) "replayed results bit-identical" true
                (a.Exec.arrays = b.Exec.arrays))));
  Alcotest.(check int) "no enumeration on the warm path" before
    (Registry.value candidates)

let suite =
  [
    Alcotest.test_case "recipe strings round-trip" `Quick
      test_recipe_round_trip;
    Alcotest.test_case "recipe parser rejects garbage" `Quick
      test_recipe_rejects_garbage;
    Gen.to_alcotest prop_recipe_round_trip;
    Alcotest.test_case "identity always survives" `Quick
      test_identity_always_survives;
    Alcotest.test_case "budget respected" `Quick test_budget_respected;
    Alcotest.test_case "winner never worse than identity (model)" `Quick
      test_winner_never_worse_than_identity;
    Alcotest.test_case "relax: search finds a non-identity win" `Quick
      test_relax_search_finds_hoist;
    Alcotest.test_case "pi: preduce only behind fp-reassoc opt-in" `Quick
      test_pi_preduce_needs_opt_in;
    Alcotest.test_case "pruned candidates counted with reasons" `Quick
      test_pruned_candidates_counted_with_reason;
    Alcotest.test_case "search metrics flow" `Quick test_search_metrics_flow;
    Alcotest.test_case "searched results bit-identical (engines x domains)"
      `Quick test_searched_results_bit_identical;
    Alcotest.test_case "pi preduce close to reference" `Quick
      test_pi_preduce_close_to_reference;
    Alcotest.test_case "measure mode picks measured winner" `Quick
      test_measure_mode_picks_measured_winner;
    Alcotest.test_case "first_region_profile" `Quick test_first_region_profile;
    Alcotest.test_case "first_region_profile on serial program" `Quick
      test_first_region_profile_serial_program;
    Alcotest.test_case "explain renderers" `Quick test_explain_renders;
    Alcotest.test_case "warm-cache recipe replay" `Quick
      test_warm_cache_recipe_replay;
  ]

(* Static race verifier, QNF recognition, diagnostics framework, and the
   static-vs-sanitizer differential. *)

open Loopcoal

let parse = Parser.parse_program
let pe = Parser.parse_expr

(* ---------- Affine: div/mod folding ---------- *)

let all_index = Affine.of_expr ~is_index:(fun _ -> true)

let affine_str e =
  match all_index (pe e) with None -> "<none>" | Some f -> Affine.to_string f

let test_affine_folds () =
  let check expr expected =
    Alcotest.(check string) expr expected (affine_str expr)
  in
  check "(2 * i + 3) / 1" (Affine.to_string (Option.get (all_index (pe "2 * i + 3"))));
  check "ceildiv(i + j, 1)" (Affine.to_string (Option.get (all_index (pe "i + j"))));
  check "i % 1" "0";
  check "6 / 3" "2";
  check "7 / 2" "3";
  check "ceildiv(7, 2)" "4";
  check "7 % 2" "1"

let test_affine_nonfolds () =
  let none expr =
    Alcotest.(check bool) (expr ^ " stays opaque") true (all_index (pe expr) = None)
  in
  none "i / 2";
  none "i % 2";
  none "ceildiv(i, 2)";
  none "5 / 0";
  none "5 % 0";
  none "ceildiv(5, 0)";
  (* Cdiv folds only for positive constant divisors. *)
  none "ceildiv(5, 0 - 2)";
  none "i * j"

(* ---------- QNF recognition ---------- *)

let digits_str (q : Qnf.t) =
  String.concat "; "
    (List.map
       (fun (d : Qnf.digit) ->
         Printf.sprintf "%s lo=%d n=%d t=%d" d.Qnf.d_var d.d_lo d.d_size
           d.d_stride)
       q.Qnf.q_digits)

let two_digit_expected = "i1 lo=1 n=4 t=8; i2 lo=1 n=8 t=1"

let test_qnf_divmod () =
  match
    Qnf.decompose ~coalesced:"j" ~trip:32
      [ ("i1", pe "(j - 1) / 8 + 1"); ("i2", pe "(j - 1) % 8 + 1") ]
  with
  | Error m -> Alcotest.failf "divmod not recognized: %s" m
  | Ok q -> Alcotest.(check string) "digits" two_digit_expected (digits_str q)

let test_qnf_ceiling () =
  match
    Qnf.decompose ~coalesced:"j" ~trip:32
      [ ("i1", pe "ceildiv(j, 8)"); ("i2", pe "j - 8 * (ceildiv(j, 8) - 1)") ]
  with
  | Error m -> Alcotest.failf "ceiling not recognized: %s" m
  | Ok q -> Alcotest.(check string) "digits" two_digit_expected (digits_str q)

(* An equivalent but differently-shaped formula: the syntactic matcher
   fails, the numeric certifier proves the same decomposition. *)
let test_qnf_numeric_fallback () =
  match
    Qnf.decompose ~coalesced:"j" ~trip:32
      [ ("i1", pe "(j + 7) / 8"); ("i2", pe "(j - 1) % 8 + 1") ]
  with
  | Error m -> Alcotest.failf "numeric fallback failed: %s" m
  | Ok q -> Alcotest.(check string) "digits" two_digit_expected (digits_str q)

let test_qnf_rejects_non_bijection () =
  match
    Qnf.decompose ~coalesced:"j" ~trip:16
      [ ("i1", pe "(j * j) % 4 + 1"); ("i2", pe "(j - 1) % 4 + 1") ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-bijective recovery accepted"

let test_qnf_hint () =
  let defs =
    [ ("i1", pe "(j - 1) / 8 + 1"); ("i2", pe "(j - 1) % 8 + 1") ]
  in
  (match
     Qnf.verify_hint ~coalesced:"j" ~trip:32
       ~sizes:[ ("i1", 4); ("i2", 8) ]
       defs
   with
  | Error m -> Alcotest.failf "correct hint rejected: %s" m
  | Ok q -> Alcotest.(check string) "digits" two_digit_expected (digits_str q));
  match
    Qnf.verify_hint ~coalesced:"j" ~trip:32
      ~sizes:[ ("i1", 8); ("i2", 4) ]
      defs
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong hint accepted"

(* linear_of_coalesced inverts the recovery: substituting the recovered
   digit values reproduces every j of the range. *)
let test_qnf_linear_inverse () =
  let defs =
    [ ("i1", pe "(j - 1) / 6 + 1"); ("i2", pe "(j - 1) % 6 + 1") ]
  in
  match Qnf.decompose ~coalesced:"j" ~trip:30 defs with
  | Error m -> Alcotest.failf "not recognized: %s" m
  | Ok q ->
      let lin = Qnf.linear_of_coalesced q in
      for j = 1 to 30 do
        let valuation =
          List.map (fun (v, e) -> (v, Qnf.eval_at ~coalesced:"j" j e)) defs
        in
        let rec ev (e : Ast.expr) =
          match e with
          | Int n -> n
          | Var v -> List.assoc v valuation
          | Bin (Add, a, b) -> ev a + ev b
          | Bin (Sub, a, b) -> ev a - ev b
          | Bin (Mul, a, b) -> ev a * ev b
          | _ -> Alcotest.fail "linear form contains unexpected operator"
        in
        Alcotest.(check int) (Printf.sprintf "j = %d" j) j (ev lin)
      done

(* ---------- Diag framework ---------- *)

let test_diag_catalog () =
  let codes = List.map (fun (c, _, _) -> c) Diag.catalog in
  Alcotest.(check (list string))
    "codes in order"
    [ "LC001"; "LC002"; "LC003"; "LC004"; "LC005"; "LC006"; "LC007";
      "LC008"; "LC009"; "LC010"; "LC011"; "LC012"; "LC013"; "LC014";
      "LC015" ]
    codes;
  Alcotest.(check bool) "severity lookup" true
    (Diag.severity_of_code "LC004" = Some Diag.Warning
    && Diag.severity_of_code "LC001" = Some Diag.Error
    && Diag.severity_of_code "LC012" = Some Diag.Error
    && Diag.severity_of_code "LC999" = None)

let test_diag_counts_worst () =
  let d code region =
    Diag.make ~code
      ~severity:(Option.get (Diag.severity_of_code code))
      ~region ~subject:"A" "m"
  in
  let diags = [ d "LC006" 1; d "LC004" 1; d "LC001" 2 ] in
  Alcotest.(check (triple int int int)) "counts" (1, 1, 1) (Diag.counts diags);
  Alcotest.(check bool) "worst" true (Diag.worst diags = Some Diag.Error);
  Alcotest.(check bool) "worst empty" true (Diag.worst [] = None)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_diag_json_escaping () =
  let report =
    {
      Diag.target = "a\"b\\c";
      regions = [];
      diags =
        [
          Diag.make ~code:"LC001" ~severity:Diag.Error ~region:1 ~subject:"A"
            "quote \" backslash \\ newline \n done";
        ];
    }
  in
  let s = Diag.render_json report in
  Alcotest.(check bool) "target escaped" true (contains s "a\\\"b\\\\c");
  Alcotest.(check bool) "message escaped" true
    (contains s "quote \\\" backslash \\\\ newline \\n done")

(* ---------- Verifier verdicts ---------- *)

let verdict_of p =
  let res = Verify.check_program p in
  (res, Verify.race_free res)

let has_code (res : Verify.result) code =
  List.exists
    (fun (r : Verify.region) ->
      List.exists (fun (d : Diag.t) -> d.Diag.code = code) r.Verify.diags)
    res.Verify.regions

let test_verify_race_free () =
  let p =
    parse
      {|program
 real A[16]
 real B[16]
begin
 doall i = 1, 16
  A[i] = B[i] + 1.0
 end
end|}
  in
  let res, free = verdict_of p in
  Alcotest.(check bool) "race free" true free;
  Alcotest.(check bool) "LC006 emitted" true (has_code res "LC006")

let test_verify_rw_race () =
  let p =
    parse
      {|program
 real A[10]
begin
 doall i = 1, 9
  A[i] = A[i + 1]
 end
end|}
  in
  let res, free = verdict_of p in
  Alcotest.(check bool) "not race free" false free;
  Alcotest.(check bool) "LC002" true (has_code res "LC002")

let test_verify_ww_race () =
  let p =
    parse
      {|program
 real A[8]
begin
 doall i = 1, 8
  A[1] = 2.0
 end
end|}
  in
  let res, free = verdict_of p in
  Alcotest.(check bool) "not race free" false free;
  Alcotest.(check bool) "LC001" true (has_code res "LC001")

let test_verify_scalar_carry () =
  let p =
    parse
      {|program
 real A[8]
 real B[8]
 real s = 0.0
begin
 doall i = 1, 8
  B[i] = s
  s = A[i]
 end
end|}
  in
  let res, free = verdict_of p in
  Alcotest.(check bool) "not race free" false free;
  Alcotest.(check bool) "LC003" true (has_code res "LC003")

let test_verify_reduction_ok () =
  let p =
    parse
      {|program
 real A[8]
 real s = 0.0
begin
 doall i = 1, 8
  s = s + A[i]
 end
end|}
  in
  let res, free = verdict_of p in
  Alcotest.(check bool) "race free" true free;
  Alcotest.(check bool) "LC008" true (has_code res "LC008")

let test_verify_nonaffine_warns () =
  let p =
    parse
      {|program
 real A[64]
begin
 doall i = 1, 8
  A[i * i] = 1.0
 end
end|}
  in
  let res, free = verdict_of p in
  Alcotest.(check bool) "unverified, not proven" false free;
  Alcotest.(check bool) "LC004" true (has_code res "LC004");
  Alcotest.(check bool) "but no error" true
    (match res.Verify.regions with
    | [ r ] -> r.Verify.verdict = Verify.Unverified
    | _ -> false)

let test_verify_coalesced_recognized () =
  let p =
    parse
      {|program
 real A[4, 8]
 int i1 = 0
 int i2 = 0
begin
 doall j = 1, 32
  i1 = (j - 1) / 8 + 1
  i2 = (j - 1) % 8 + 1
  A[i1, i2] = 1.0
 end
end|}
  in
  let res, free = verdict_of p in
  Alcotest.(check bool) "race free through recovery" true free;
  Alcotest.(check bool) "LC007" true (has_code res "LC007")

let test_verify_shadowed_index () =
  (* A serial inner loop rebinding the parallel index: the verifier
     refuses to reason about the region (LC009) rather than mislabel the
     subscripts. Built via AST because the surface program is perverse. *)
  let body_inner =
    [ Ast.Assign (Ast.Elem ("A", [ Ast.Var "i" ]), Ast.Real 1.0) ]
  in
  let p =
    {
      Ast.arrays = [ { Ast.arr_name = "A"; dims = [ 4 ] } ];
      scalars = [];
      body =
        [
          Ast.For
            {
              index = "i";
              lo = Int 1;
              hi = Int 4;
              step = Int 1;
              par = Parallel;
              body =
                [
                  Ast.For
                    {
                      index = "i";
                      lo = Int 1;
                      hi = Int 2;
                      step = Int 1;
                      par = Serial;
                      body = body_inner;
                    };
                ];
            };
        ];
    }
  in
  let res, free = verdict_of p in
  Alcotest.(check bool) "not proven" false free;
  Alcotest.(check bool) "LC009" true (has_code res "LC009")

(* ---------- strip-mine recognition (LC015) ---------- *)

let test_verify_tiled_nest_race_free () =
  (* The transformation search emits tiled candidates; the verifier must
     not downgrade them, or every tile recipe would be pruned. Tiling a
     race-free doall nest yields parallel tile loops over serial strip
     loops whose subscripts are [c*v + r] shapes — LC015 records the
     recognition and the verdict stays race-free. *)
  let p =
    parse
      {|program
 real A[8, 8]
begin
 doall i = 1, 8
  doall j = 1, 8
   A[i, j] = 1.0 * i + 2.0 * j
  end
 end
end|}
  in
  Alcotest.(check bool) "untiled race free" true (snd (verdict_of p));
  match Recipe.apply [ Recipe.Tile 4 ] p with
  | Error m -> Alcotest.failf "tile recipe declined: %s" m
  | Ok tiled ->
      let res, free = verdict_of tiled in
      Alcotest.(check bool) "tiled still race free" true free;
      Alcotest.(check bool) "LC015 recognition recorded" true
        (has_code res "LC015")

let test_verify_overlapping_strips_flagged () =
  (* Same [c*v + r] shape but with stride 2 under a width-4 remainder:
     consecutive ii blocks overlap, so distinct parallel iterations
     write the same elements. The strip recognizer must not talk the
     race checker out of flagging it. *)
  let p =
    parse
      {|program
 real A[16]
begin
 doall ii = 1, 4
  do r = 1, 4
   A[2 * ii + r] = 1.0
  end
 end
end|}
  in
  let _, free = verdict_of p in
  Alcotest.(check bool) "overlapping strips not race free" false free

(* ---------- coalesced-iff-original on kernels and examples ---------- *)

let hints_of metas =
  List.filter_map
    (fun (m : Coalesce.recovery_meta) ->
      Option.map
        (fun digits ->
          { Verify.h_coalesced = m.Coalesce.rm_coalesced; h_digits = digits })
        m.Coalesce.rm_digits)
    metas

let check_iff name p =
  let orig_free = Verify.race_free (Verify.check_program p) in
  List.iter
    (fun (sname, strategy) ->
      let p', metas = Coalesce.apply_all_program_meta ~strategy p in
      let free' =
        Verify.race_free (Verify.check_program ~hints:(hints_of metas) p')
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: coalesced (%s) race-free iff original" name sname)
        orig_free free')
    [ ("ceiling", Index_recovery.Ceiling); ("divmod", Index_recovery.Div_mod) ]

let test_kernels_iff () =
  List.iter
    (fun name ->
      match Kernels.by_name name with
      | None -> ()
      | Some mk -> check_iff name (mk ()))
    Kernels.all_names

let example_files () =
  let dir = "../examples/programs" in
  let list d =
    if Sys.file_exists d && Sys.is_directory d then
      Sys.readdir d |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".loop")
      |> List.map (Filename.concat d)
    else []
  in
  List.sort String.compare (list dir @ list (Filename.concat dir "diagnostics"))

let test_examples_iff () =
  let files = example_files () in
  Alcotest.(check bool)
    (Printf.sprintf "example corpus found (%d files)" (List.length files))
    true
    (List.length files >= 10);
  List.iter
    (fun file ->
      match Driver.load_file file with
      | Error m -> Alcotest.failf "%s: %s" file m
      | Ok p -> check_iff file p)
    files

(* ---------- sanitizer ---------- *)

let sanitize_total ?policy ?domains p =
  let _, sh = Runtime.Exec.run_sanitized ?policy ?domains p in
  snd (Runtime.Sanitize.results sh)

let test_sanitizer_clean () =
  let p = Kernels.matmul ~ra:5 ~ca:4 ~cb:6 in
  List.iter
    (fun domains ->
      Alcotest.(check int)
        (Printf.sprintf "matmul clean at %d domains" domains)
        0
        (sanitize_total ~policy:Policy.Gss ~domains p))
    [ 1; 2; 4 ]

let test_sanitizer_flags_rw () =
  let p =
    parse
      {|program
 real A[10]
begin
 doall i = 1, 9
  A[i] = A[i + 1]
 end
end|}
  in
  (* 1 domain: iterations run in coalesced order, detection is exact. *)
  let total = sanitize_total ~domains:1 p in
  Alcotest.(check int) "all 8 cross-iteration conflicts seen" 8 total

let test_sanitizer_flags_ww () =
  let p =
    parse
      {|program
 real A[8]
begin
 doall i = 1, 8
  A[1] = 2.0
 end
end|}
  in
  let _, sh = Runtime.Exec.run_sanitized ~domains:1 p in
  let reports, total = Runtime.Sanitize.results sh in
  Alcotest.(check bool) "W/W conflicts seen" true (total >= 7);
  Alcotest.(check bool) "kind is write/write" true
    (List.for_all
       (fun (r : Runtime.Sanitize.report) -> r.Runtime.Sanitize.rep_kind = Ww)
       reports)

let test_sanitizer_report_cap () =
  let p =
    parse
      {|program
 real A[8]
begin
 doall i = 1, 100
  A[1] = 2.0
 end
end|}
  in
  let _, sh = Runtime.Exec.run_sanitized ~domains:1 ~limit:10 p in
  let reports, total = Runtime.Sanitize.results sh in
  Alcotest.(check int) "total counted past cap" 99 total;
  Alcotest.(check int) "retained capped" 10 (List.length reports)

(* ---------- static/dynamic differential ---------- *)

(* Statically race-free  =>  zero sanitizer reports, on every scheduler
   at 1/2/4 domains. Programs come from the affine generator; the
   verifier's verdict selects the race-free subpopulation (the racy rest
   double-checks that the verifier still accepts >0 programs). *)
let test_differential () =
  let rand = Random.State.make [| 0x10C0a1e5; 0xce |] in
  let policies =
    [
      Policy.Static_block;
      Policy.Static_cyclic;
      Policy.Self_sched 2;
      Policy.Gss;
      Policy.Factoring;
      Policy.Trapezoid;
    ]
  in
  let clean = ref 0 and flagged = ref 0 and attempts = ref 0 in
  while !clean < 200 && !attempts < 4000 do
    incr attempts;
    let p = Gen.verifiable_program_gen rand in
    if Verify.race_free (Verify.check_program p) then begin
      incr clean;
      List.iter
        (fun policy ->
          List.iter
            (fun domains ->
              let total = sanitize_total ~policy ~domains p in
              if total > 0 then
                Alcotest.failf
                  "sanitizer found %d race(s) in statically race-free \
                   program (policy %s, %d domains):\n%s"
                  total (Policy.name policy) domains
                  (Pretty.program_to_string p))
            [ 1; 2; 4 ])
        policies
    end
    else incr flagged
  done;
  Alcotest.(check bool)
    (Printf.sprintf
       "collected 200 statically race-free cases (%d attempts, %d flagged)"
       !attempts !flagged)
    true (!clean >= 200);
  Alcotest.(check bool) "generator also produces statically racy programs"
    true (!flagged > 0)

(* The seeded racy program is flagged by both ends of the differential. *)
let test_differential_racy_agrees () =
  let p =
    parse
      {|program
 real A[10]
begin
 doall i = 1, 9
  A[i] = A[i + 1]
 end
end|}
  in
  Alcotest.(check bool) "static verdict racy" false
    (Verify.race_free (Verify.check_program p));
  Alcotest.(check bool) "sanitizer agrees" true (sanitize_total ~domains:1 p > 0)

let suite =
  [
    Alcotest.test_case "affine div/mod folds" `Quick test_affine_folds;
    Alcotest.test_case "affine non-folds" `Quick test_affine_nonfolds;
    Alcotest.test_case "qnf divmod" `Quick test_qnf_divmod;
    Alcotest.test_case "qnf ceiling" `Quick test_qnf_ceiling;
    Alcotest.test_case "qnf numeric fallback" `Quick test_qnf_numeric_fallback;
    Alcotest.test_case "qnf rejects non-bijection" `Quick
      test_qnf_rejects_non_bijection;
    Alcotest.test_case "qnf hint" `Quick test_qnf_hint;
    Alcotest.test_case "qnf linear inverse" `Quick test_qnf_linear_inverse;
    Alcotest.test_case "diag catalog" `Quick test_diag_catalog;
    Alcotest.test_case "diag counts/worst" `Quick test_diag_counts_worst;
    Alcotest.test_case "diag json escaping" `Quick test_diag_json_escaping;
    Alcotest.test_case "verify race-free" `Quick test_verify_race_free;
    Alcotest.test_case "verify R/W race" `Quick test_verify_rw_race;
    Alcotest.test_case "verify W/W race" `Quick test_verify_ww_race;
    Alcotest.test_case "verify scalar carry" `Quick test_verify_scalar_carry;
    Alcotest.test_case "verify reduction" `Quick test_verify_reduction_ok;
    Alcotest.test_case "verify non-affine" `Quick test_verify_nonaffine_warns;
    Alcotest.test_case "verify coalesced recovery" `Quick
      test_verify_coalesced_recognized;
    Alcotest.test_case "verify shadowed index" `Quick
      test_verify_shadowed_index;
    Alcotest.test_case "verify tiled nest race free (LC015)" `Quick
      test_verify_tiled_nest_race_free;
    Alcotest.test_case "verify overlapping strips flagged" `Quick
      test_verify_overlapping_strips_flagged;
    Alcotest.test_case "kernels: coalesced iff original" `Quick
      test_kernels_iff;
    Alcotest.test_case "examples: coalesced iff original" `Quick
      test_examples_iff;
    Alcotest.test_case "sanitizer clean on matmul" `Quick test_sanitizer_clean;
    Alcotest.test_case "sanitizer flags R/W" `Quick test_sanitizer_flags_rw;
    Alcotest.test_case "sanitizer flags W/W" `Quick test_sanitizer_flags_ww;
    Alcotest.test_case "sanitizer report cap" `Quick test_sanitizer_report_cap;
    Alcotest.test_case "differential: static => dynamic" `Slow
      test_differential;
    Alcotest.test_case "differential: racy agrees" `Quick
      test_differential_racy_agrees;
  ]

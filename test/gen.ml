(* QCheck generators for random IR programs.

   Subscripts are clamped into bounds with min/max so every generated
   program executes without faulting; this keeps semantic-equivalence
   properties about transformations from collapsing into "both fault". *)

open Loopcoal
module G = QCheck.Gen

let small_size = G.int_range 1 5

(* An integer expression over the given index variables (always at least
   one variable available: literals otherwise). *)
let int_expr vars : Ast.expr G.t =
  let open G in
  let leaf =
    frequency
      [
        (2, map (fun n -> Ast.Int n) (int_range (-4) 9));
        ( (if vars = [] then 0 else 3),
          map (fun i -> Ast.Var (List.nth vars i))
            (int_range 0 (max 0 (List.length vars - 1))) );
      ]
  in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        frequency
          [
            (2, leaf);
            ( 3,
              map3
                (fun op a b -> Ast.Bin (op, a, b))
                (oneofl [ Ast.Add; Ast.Sub; Ast.Mul ])
                (self (depth - 1))
                (self (depth - 1)) );
            (1, map (fun a -> Ast.Neg a) (self (depth - 1)));
          ])
    2

(* Clamp an expression into [1, dim]: min(max(e, 1), dim). *)
let clamp dim e : Ast.expr =
  Ast.Bin (Min, Bin (Max, e, Int 1), Int dim)

let array_dims = [ ("W", [ 6; 6 ]); ("V", [ 8 ]); ("U", [ 4; 3; 3 ]) ]

let array_ref vars : (string * Ast.expr list) G.t =
  let open G in
  let* name, dims = oneofl array_dims in
  let+ subs =
    flatten_l (List.map (fun d -> map (clamp d) (int_expr vars)) dims)
  in
  (name, subs)

(* The right-hand side mixes loads and index arithmetic; loads make the
   value real, plain arithmetic is fine too. *)
let rhs_expr vars : Ast.expr G.t =
  let open G in
  frequency
    [
      (2, int_expr vars);
      ( 3,
        let* name, subs = array_ref vars in
        let+ extra = int_expr vars in
        Ast.Bin (Add, Load (name, subs), extra) );
    ]

let assign_stmt vars : Ast.stmt G.t =
  let open G in
  let* name, subs = array_ref vars in
  let+ e = rhs_expr vars in
  Ast.Assign (Elem (name, subs), e)

(* A random statement with nesting budget [depth] and loop-index pool. *)
let index_pool = [ "i"; "j"; "k"; "l"; "q" ]

let rec stmt_gen vars depth : Ast.stmt G.t =
  let open G in
  if depth = 0 || List.length vars >= List.length index_pool then
    assign_stmt vars
  else
    frequency
      [
        (3, assign_stmt vars);
        ( 1,
          let* c =
            let* a = int_expr vars and* b = int_expr vars in
            let+ op = oneofl [ Ast.Lt; Ast.Le; Ast.Eq; Ast.Ge ] in
            Ast.Cmp (op, a, b)
          in
          let* t = block_gen vars (depth - 1) in
          let+ f = block_gen vars (depth - 1) in
          Ast.If (c, t, f) );
        (2, loop_gen vars depth);
      ]

and block_gen vars depth : Ast.block G.t =
  let open G in
  let* n = int_range 1 3 in
  flatten_l (List.init n (fun _ -> stmt_gen vars depth))

and loop_gen vars depth : Ast.stmt G.t =
  let open G in
  let index =
    List.find (fun v -> not (List.mem v vars)) index_pool
  in
  let* lo = int_range 1 3 in
  let* trips = int_range 0 4 in
  let* step = int_range 1 3 in
  let* par = oneofl [ Ast.Serial; Ast.Parallel ] in
  let+ body = block_gen (index :: vars) (depth - 1) in
  Ast.For
    {
      index;
      lo = Int lo;
      hi = Int (lo + (trips * step) - 1);
      step = Int step;
      par;
      body;
    }

let program_gen : Ast.program G.t =
  let open G in
  let+ body = block_gen [] 3 in
  {
    Ast.arrays =
      List.map (fun (n, dims) -> { Ast.arr_name = n; dims }) array_dims;
    scalars = [ { Ast.sc_name = "s"; sc_kind = Kreal; sc_init = 0.0 } ];
    body;
  }

(* A random perfect nest of parallel loops (unit steps, constant bounds)
   with a non-trivial body — the coalescing target. *)
let perfect_nest_gen : Ast.program G.t =
  let open G in
  let* depth = int_range 2 4 in
  let indices = List.filteri (fun i _ -> i < depth) index_pool in
  let* sizes = flatten_l (List.init depth (fun _ -> int_range 1 5)) in
  let* los = flatten_l (List.init depth (fun _ -> int_range 1 3)) in
  let+ body = block_gen indices 1 in
  let rec build idxs szs ls : Ast.stmt =
    match (idxs, szs, ls) with
    | [ ix ], [ n ], [ lo ] ->
        For
          {
            index = ix;
            lo = Int lo;
            hi = Int (lo + n - 1);
            step = Int 1;
            par = Parallel;
            body;
          }
    | ix :: idxs, n :: szs, lo :: ls ->
        For
          {
            index = ix;
            lo = Int lo;
            hi = Int (lo + n - 1);
            step = Int 1;
            par = Parallel;
            body = [ build idxs szs ls ];
          }
    | _ -> assert false
  in
  {
    Ast.arrays =
      List.map (fun (n, dims) -> { Ast.arr_name = n; dims }) array_dims;
    scalars = [];
    body = [ build indices sizes los ];
  }

(* Programs whose subscripts are affine in the loop indices and
   statically in bounds — exactly the fragment the race verifier
   analyses without giving up. Races are generated on purpose (constant
   subscripts under a write, shifted reads against writes); differential
   properties filter on the static verdict. Unlike [program_gen], no
   min/max clamping: that would make every subscript non-affine. *)

let verifiable_arrays = [ ("P", [ 12 ]); ("Q", [ 12 ]); ("R", [ 6; 8 ]) ]

(* An in-bounds affine subscript for a dimension of size [d] over index
   pool [idxs] = (name, size) with all loops running [1..size]. *)
let affine_sub idxs d : Ast.expr G.t =
  let open G in
  let usable = List.filter (fun (_, size) -> size <= d) idxs in
  let direct =
    List.map
      (fun (v, size) ->
        ( 3,
          let+ off = int_range 0 (d - size) in
          if off = 0 then Ast.Var v else Ast.Bin (Add, Var v, Int off) ))
      usable
  in
  let reversed =
    List.map
      (fun (v, size) ->
        ( 1,
          let+ off = int_range 0 (d - size) in
          Ast.Bin (Sub, Int (size + 1 + off), Var v) ))
      usable
  in
  frequency ((2, map (fun c -> Ast.Int c) (int_range 1 d)) :: direct @ reversed)

let affine_ref idxs : (string * Ast.expr list) G.t =
  let open G in
  let* name, dims = oneofl verifiable_arrays in
  let+ subs = flatten_l (List.map (affine_sub idxs) dims) in
  (name, subs)

let affine_rhs idxs : Ast.expr G.t =
  let open G in
  frequency
    [
      (1, map (fun n -> Ast.Real (float_of_int n)) (int_range 0 9));
      ( 3,
        let+ name, subs = affine_ref idxs in
        Ast.Load (name, subs) );
      ( 2,
        let* name, subs = affine_ref idxs in
        let+ name2, subs2 = affine_ref idxs in
        Ast.Bin (Add, Load (name, subs), Load (name2, subs2)) );
    ]

let verifiable_stmt idxs : Ast.stmt G.t =
  let open G in
  frequency
    [
      ( 6,
        let* name, subs = affine_ref idxs in
        let+ e = affine_rhs idxs in
        Ast.Assign (Elem (name, subs), e) );
      (* Sum reduction: race-free, exercises the LC008 path. *)
      ( 1,
        let+ e = affine_rhs idxs in
        Ast.Assign (Scalar "s", Bin (Add, Var "s", e)) );
      (* Privatizable temporary: written before read each iteration. *)
      ( 1,
        let* e = affine_rhs idxs in
        let+ name, subs = affine_ref idxs in
        let block =
          [
            Ast.Assign (Ast.Scalar "t", e);
            Ast.Assign (Elem (name, subs), Ast.Var "t");
          ]
        in
        (* flattened below; wrap as If true to keep one stmt *)
        Ast.If (Ast.True, block, []) );
    ]

let verifiable_nest_gen : Ast.stmt G.t =
  let open G in
  let* depth = int_range 1 2 in
  let indices = List.filteri (fun i _ -> i < depth) [ "i"; "j" ] in
  let* sizes = flatten_l (List.init depth (fun _ -> int_range 2 4)) in
  let idxs = List.combine indices sizes in
  let* n = int_range 1 3 in
  let* body = flatten_l (List.init n (fun _ -> verifiable_stmt idxs)) in
  let rec build = function
    | [] -> assert false
    | [ (ix, size) ] ->
        Ast.For
          {
            index = ix;
            lo = Int 1;
            hi = Int size;
            step = Int 1;
            par = Parallel;
            body;
          }
    | (ix, size) :: rest ->
        Ast.For
          {
            index = ix;
            lo = Int 1;
            hi = Int size;
            step = Int 1;
            par = Parallel;
            body = [ build rest ];
          }
  in
  return (build idxs)

let verifiable_program_gen : Ast.program G.t =
  let open G in
  let* n = int_range 1 2 in
  let+ nests = flatten_l (List.init n (fun _ -> verifiable_nest_gen)) in
  {
    Ast.arrays =
      List.map (fun (n, dims) -> { Ast.arr_name = n; dims }) verifiable_arrays;
    scalars =
      [
        { Ast.sc_name = "s"; sc_kind = Kreal; sc_init = 0.0 };
        { Ast.sc_name = "t"; sc_kind = Kreal; sc_init = 0.0 };
      ];
    body = nests;
  }

let shrink_program _ = QCheck.Iter.empty

let arbitrary_program =
  QCheck.make ~print:Pretty.program_to_string ~shrink:shrink_program
    program_gen

let arbitrary_perfect_nest =
  QCheck.make ~print:Pretty.program_to_string ~shrink:shrink_program
    perfect_nest_gen

(* Sizes list for index-recovery properties. *)
let sizes_gen =
  let open G in
  let* depth = int_range 1 5 in
  flatten_l (List.init depth (fun _ -> int_range 1 7))

let arbitrary_sizes =
  QCheck.make
    ~print:(fun s -> String.concat "x" (List.map string_of_int s))
    sizes_gen

let to_alcotest = QCheck_alcotest.to_alcotest ~verbose:false

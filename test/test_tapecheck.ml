(* Tapecheck, the bytecode-tier translation validator.

   Two halves, mirrored:
   - soundness of the *validator*: the full corpus — example programs,
     built-in kernels, the random fragments the optimizer tests
     exercise — validates clean at every optimizer level, sanitized and
     not (no false positives);
   - soundness of the *checks*: deliberately corrupted tapes are each
     rejected with the expected stable code (no false negatives). The
     corruptions are injected through [Compile]'s [tape_dump] hook, so
     the finding that rejects them comes from the same per-pass
     validation pipeline the CLI's [--validate-tape] runs.

   Plus the plan-cache contract: a disk entry that deserializes but
   fails validation is a miss (recompiled, overwritten, counted under
   [plan_cache.reject]), never executed. *)

open Loopcoal
module B = Builder
module Compile = Runtime.Compile
module Bytecode = Runtime.Bytecode
module Plancache = Runtime.Plancache

(* Compile [prog] cold with the per-pass validation hook, returning
   every finding; [mutate = (pass, f)] corrupts the tape right after
   [pass] rewrites it and right before that stage's validation. *)
let findings ?(sanitize = false) ?(opt_level = 0) ?mutate prog =
  let collected = ref [] in
  let tape_dump =
    Option.map
      (fun (sel, f) ->
        fun ~plan:_ ~pass tape -> if String.equal pass sel then f tape)
      mutate
  in
  let validate ~plan:_ ~pass:_ ds = collected := !collected @ ds in
  let (_ : Compile.t) =
    Compile.compile ~sanitize ~opt_level ?tape_dump ~validate prog
  in
  !collected

let has code ds = List.exists (fun (d : Diag.t) -> d.Diag.code = code) ds

let show ds =
  String.concat "; "
    (List.map (fun (d : Diag.t) -> d.Diag.code ^ " " ^ d.Diag.message) ds)

let check_code name code ds =
  if not (has code ds) then
    Alcotest.failf "%s: expected %s, got [%s]" name code (show ds)

(* ---------- fixture programs ---------- *)

(* Serial accumulation: exercises the rotated const-step loop, register
   promotion, span ranges. *)
let serial_prog =
  B.program
    ~arrays:[ B.array "W" [ 6; 6 ] ]
    [
      B.doall "i" (B.int 1) (B.int 6)
        [
          B.doall "j" (B.int 1) (B.int 6)
            [
              B.for_ "k" (B.int 1) (B.int 4)
                [
                  B.store "W"
                    [ B.var "i"; B.var "j" ]
                    B.(load "W" [ var "i"; var "j" ] + var "k");
                ];
            ];
        ];
    ]

(* Two accesses varying along the strip index with distinct offsets:
   at -O1/-O2 the optimizer streams them into two scratch slots. *)
let stream_prog =
  B.program
    ~arrays:[ B.array "W" [ 6; 6 ]; B.array "V" [ 6 ] ]
    [
      B.doall "i" (B.int 1) (B.int 6)
        [
          B.doall "j" (B.int 1) (B.int 6)
            [
              B.store "W"
                [ B.var "i"; B.var "j" ]
                B.(load "W" [ var "i"; var "j" ] + load "V" [ var "j" ]);
            ];
        ];
    ]

(* ---------- mutations: each rejected with its stable code ---------- *)

(* Retarget the serial loop's index initialization at the loop's bound
   register: the index register is then read (back edge, subscripts)
   with no definition on any path. *)
let kill_loop_init (t : Bytecode.tape) =
  let ops = t.Bytecode.tp_ops in
  match
    Array.find_map
      (function Bytecode.Iloopc (r, _, bnd, _) -> Some (r, bnd) | _ -> None)
      ops
  with
  | None -> Alcotest.fail "fixture has no const-step serial loop"
  | Some (r, bnd) ->
      let found = ref false in
      Array.iteri
        (fun i op ->
          if not !found then
            match op with
            | Bytecode.Iaff (d, a) when d = r ->
                ops.(i) <- Bytecode.Iaff (bnd, a);
                found := true
            | Bytecode.Iconst (d, n) when d = r ->
                ops.(i) <- Bytecode.Iconst (bnd, n);
                found := true
            | _ -> ())
        ops;
      if not !found then Alcotest.fail "no loop-index initialization found"

let test_undefined_read () =
  check_code "killed loop init" "LC010"
    (findings ~mutate:("lower", kill_loop_init) serial_prog)

(* Aim a store's float operand into the int register file (any index far
   past the float file): the per-opcode type discipline is violated. *)
let cross_file_operand (t : Bytecode.tape) =
  let ops = t.Bytecode.tp_ops in
  match
    Array.find_map
      (fun i ->
        match ops.(i) with Bytecode.Fstore _ -> Some i | _ -> None)
      (Array.init (Array.length ops) Fun.id)
  with
  | None -> Alcotest.fail "fixture has no store"
  | Some i ->
      (match ops.(i) with
      | Bytecode.Fstore (src, id) ->
          ops.(i) <- Bytecode.Fstore (src + 1_000_000, id)
      | _ -> assert false)

let test_cross_file_operand () =
  check_code "float operand out of its file" "LC011"
    (findings ~mutate:("lower", cross_file_operand) stream_prog)

(* Shrink a stored subscript range to a single point: the once-per-fork
   check no longer covers the offsets the instruction stream derives. *)
let shrink_range (t : Bytecode.tape) =
  if Array.length t.Bytecode.tp_accs = 0 then
    Alcotest.fail "fixture has no accesses"
  else begin
    let a = t.Bytecode.tp_accs.(0) in
    if Array.length a.Bytecode.ac_rngs = 0 then
      Alcotest.fail "access has no subscripts"
    else a.Bytecode.ac_rngs.(0) <- Bytecode.Rconst 1
  end

let test_offset_outside_range () =
  check_code "narrowed stored range" "LC012"
    (findings ~mutate:("lower", shrink_range) stream_prog)

(* Point an instruction's provenance tag past the tag table. *)
let break_provenance (t : Bytecode.tape) =
  if Array.length t.Bytecode.tp_src = 0 then
    Alcotest.fail "fixture has an empty body"
  else t.Bytecode.tp_src.(0) <- 424_242

let test_missing_provenance () =
  check_code "provenance tag out of table" "LC013"
    (findings ~mutate:("lower", break_provenance) stream_prog)

(* Displace a [Jadv] separator off its unrolled-copy boundary. *)
let misplace_jadv (t : Bytecode.tape) =
  match t.Bytecode.tp_unrolled with
  | None -> Alcotest.fail "fixture did not unroll"
  | Some u -> (
      match
        Array.find_map
          (fun i -> match u.(i) with Bytecode.Jadv -> Some i | _ -> None)
          (Array.init (Array.length u) Fun.id)
      with
      | None -> Alcotest.fail "unrolled body has no separator"
      | Some i ->
          let tmp = u.(i) in
          u.(i) <- u.(i + 1);
          u.(i + 1) <- tmp)

let test_misplaced_jadv () =
  check_code "displaced separator" "LC011"
    (findings ~opt_level:2 ~mutate:("unroll", misplace_jadv) stream_prog)

(* Make two streamed offsets share one scratch slot: the second group's
   self-bumps would corrupt the first's offsets at run time. *)
let reuse_stream_slot (t : Bytecode.tape) =
  let sinits = ref [] in
  let scan arr =
    Array.iteri
      (fun i op ->
        match op with
        | Bytecode.Sinit (s, _) -> sinits := (arr, i, s) :: !sinits
        | _ -> ())
      arr
  in
  scan t.Bytecode.tp_pre;
  scan t.Bytecode.tp_ops;
  match List.rev !sinits with
  | (_, _, s0) :: rest -> (
      match List.find_opt (fun (_, _, s) -> s <> s0) rest with
      | None -> Alcotest.fail "fixture has fewer than two stream slots"
      | Some (arr, i, _) -> (
          match arr.(i) with
          | Bytecode.Sinit (_, a) -> arr.(i) <- Bytecode.Sinit (s0, a)
          | _ -> assert false))
  | [] -> Alcotest.fail "fixture has no stream inits"

let test_stream_slot_reuse () =
  check_code "stream slot shared across groups" "LC011"
    (findings ~opt_level:2 ~mutate:("unroll", reuse_stream_slot) stream_prog)

(* Retarget a store at another array's access: the optimized tape's
   write footprint no longer matches the unoptimized tape's. *)
let retarget_store (t : Bytecode.tape) =
  let ops = t.Bytecode.tp_ops in
  let accs = t.Bytecode.tp_accs in
  let other id =
    let slot = accs.(id).Bytecode.ac_slot in
    let r = ref None in
    Array.iteri
      (fun id' a ->
        if !r = None && a.Bytecode.ac_slot <> slot then r := Some id')
      accs;
    !r
  in
  let found = ref false in
  Array.iteri
    (fun i op ->
      if not !found then
        match op with
        | Bytecode.Fstore (src, id) -> (
            match other id with
            | Some id' ->
                ops.(i) <- Bytecode.Fstore (src, id');
                found := true
            | None -> ())
        | _ -> ())
    ops;
  if not !found then Alcotest.fail "no store retargetable to another array"

let test_footprint_divergence () =
  check_code "store retargeted across arrays" "LC014"
    (findings ~opt_level:2 ~mutate:("unroll", retarget_store) stream_prog)

(* ---------- no false positives: the clean corpus ---------- *)

let assert_clean what prog =
  List.iter
    (fun opt_level ->
      List.iter
        (fun sanitize ->
          let ds = findings ~sanitize ~opt_level prog in
          if ds <> [] then
            Alcotest.failf "%s -O%d%s: [%s]" what opt_level
              (if sanitize then " sanitized" else "")
              (show ds))
        [ false; true ])
    [ 0; 1; 2 ]

let test_examples_clean () =
  let dir = "../examples/programs" in
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".loop" then
        match Driver.load_file (Filename.concat dir f) with
        | Error m -> Alcotest.failf "%s: %s" f m
        | Ok p -> assert_clean f p)
    (Sys.readdir dir)

let test_kernels_clean () =
  List.iter
    (fun name ->
      match Kernels.by_name name with
      | None -> ()
      | Some mk -> assert_clean ("kernel " ^ name) (mk ()))
    Kernels.all_names

let prop_clean gen ~name =
  Gen.to_alcotest
    (QCheck.Test.make ~count:8 ~name
       (QCheck.make ~print:Pretty.program_to_string gen)
       (fun prog ->
         List.for_all
           (fun opt_level ->
             List.for_all
               (fun sanitize -> findings ~sanitize ~opt_level prog = [])
               [ false; true ])
           [ 0; 1; 2 ]))

(* ---------- metrics ---------- *)

let test_metrics_recorded () =
  let ns = Registry.histogram "tapecheck.ns" in
  let total = Registry.counter "tapecheck.findings" in
  let runs0 = (Registry.hstats ns).Registry.count in
  let found0 = Registry.value total in
  let ds = findings ~mutate:("lower", break_provenance) stream_prog in
  Alcotest.(check bool) "timer observed every check" true
    ((Registry.hstats ns).Registry.count > runs0);
  Alcotest.(check bool) "findings counter advanced by the report" true
    (Registry.value total >= found0 + List.length ds)

(* ---------- plan cache: disk hits are validated ---------- *)

let test_disk_hit_validated () =
  Test_plancache.with_temp_dir (fun dir ->
      Counters.reset ();
      let reject0 = Registry.value (Registry.counter "plan_cache.reject") in
      let c1 =
        Compile.compile ~cache:(Plancache.create ~dir ()) Test_plancache.prog
      in
      Alcotest.(check (pair int int))
        "cold compile misses" (0, 1)
        (Counters.plan_cache_stats ());
      (* Corrupt the stored tapes' provenance in place, keeping the
         files loadable: deserialization succeeds, validation must
         not. *)
      Array.iter
        (fun f ->
          if Filename.check_suffix f ".plan" then begin
            let path = Filename.concat dir f in
            let ic = open_in_bin path in
            let v, (e : Plancache.entry) =
              (input_value ic : int * Plancache.entry)
            in
            close_in ic;
            List.iter
              (fun ((t : Bytecode.tape option), _, _) ->
                match t with
                | Some t when Array.length t.Bytecode.tp_src > 0 ->
                    t.Bytecode.tp_src.(0) <- 424_242
                | _ -> ())
              e.Plancache.e_plans;
            let oc = open_out_bin path in
            output_value oc (v, e);
            close_out oc
          end)
        (Sys.readdir dir);
      let c2 =
        Compile.compile ~cache:(Plancache.create ~dir ()) Test_plancache.prog
      in
      Alcotest.(check (pair int int))
        "rejected disk entry recompiles as a miss" (0, 2)
        (Counters.plan_cache_stats ());
      Alcotest.(check bool) "rejection counted" true
        (Registry.value (Registry.counter "plan_cache.reject") > reject0);
      Alcotest.(check bool) "recompile reproduces the cold tapes" true
        (Test_plancache.tapes c1 = Test_plancache.tapes c2);
      (* The recompile overwrote the corrupt file: a third instance
         hits from disk again, now clean. *)
      let (_ : Compile.t) =
        Compile.compile ~cache:(Plancache.create ~dir ()) Test_plancache.prog
      in
      Alcotest.(check (pair int int))
        "overwritten entry hits" (1, 2)
        (Counters.plan_cache_stats ()))

let suite =
  [
    Alcotest.test_case "undefined register read -> LC010" `Quick
      test_undefined_read;
    Alcotest.test_case "operand outside its register file -> LC011" `Quick
      test_cross_file_operand;
    Alcotest.test_case "offset outside checked range -> LC012" `Quick
      test_offset_outside_range;
    Alcotest.test_case "missing provenance tag -> LC013" `Quick
      test_missing_provenance;
    Alcotest.test_case "misplaced Jadv separator -> LC011" `Quick
      test_misplaced_jadv;
    Alcotest.test_case "stream-slot reuse -> LC011" `Quick
      test_stream_slot_reuse;
    Alcotest.test_case "footprint divergence -> LC014" `Quick
      test_footprint_divergence;
    Alcotest.test_case "example programs validate clean" `Quick
      test_examples_clean;
    Alcotest.test_case "built-in kernels validate clean" `Quick
      test_kernels_clean;
    prop_clean Test_bytecode.serial_accum_gen
      ~name:"random serial-accumulation nests validate clean";
    prop_clean Test_bytecode.branchy_varstep_gen
      ~name:"random branchy variable-step nests validate clean";
    Alcotest.test_case "tapecheck metrics recorded" `Quick
      test_metrics_recorded;
    Alcotest.test_case "invalid disk cache entry is a rejected miss" `Quick
      test_disk_hit_validated;
  ]

(* Bytecode execution tier: strip geometry, checked-then-unsafe access,
   register promotion, and differential equivalence against both the
   closure engine and the reference interpreter.

   The strip decomposition is pinned exactly (it determines which
   iterations run without an odometer step), and every differential
   property runs all policies on 1, 2 and 4 domains so chunk boundaries
   land both inside and across inner-digit runs. *)

open Loopcoal
module B = Builder
module Exec = Runtime.Exec
module Compile = Runtime.Compile
module Bytecode = Runtime.Bytecode
module Sanitize = Runtime.Sanitize

let all_policies =
  [
    Policy.Static_block;
    Policy.Static_cyclic;
    Policy.Self_sched 1;
    Policy.Self_sched 7;
    Policy.Gss;
    Policy.Factoring;
    Policy.Trapezoid;
  ]

let domain_counts = [ 1; 2; 4 ]

(* Engine x optimizer-level configurations: together with the reference
   interpreter these make every differential four-way — closure, raw
   bytecode (-O0) and the full Tapeopt pipeline (-O2) must all agree. *)
let configs =
  [
    ("closure", Exec.Closure, 2);
    ("bytecode -O0", Exec.Bytecode, 0);
    ("bytecode -O2", Exec.Bytecode, 2);
  ]

let check_all_engines ~what prog =
  let st = Eval.run prog in
  List.iter
    (fun policy ->
      List.iter
        (fun domains ->
          List.iter
            (fun (cname, engine, opt_level) ->
              let outcome = Exec.run ~domains ~policy ~engine ~opt_level prog in
              if not (Exec.agrees_with_interpreter outcome st) then
                Alcotest.failf "%s: %s engine (%d domains, %s) differs" what
                  cname domains (Policy.name policy))
            configs)
        domain_counts)
    all_policies

(* ---------- strip geometry ---------- *)

let strips = Alcotest.(list (pair int int))

let test_strip_bounds () =
  (* A chunk entering mid-digit: partial strip, full strip, partial
     strip. *)
  Alcotest.check strips "mid-digit entry"
    [ (3, 3); (6, 5); (11, 2) ]
    (Bytecode.strip_bounds ~inner:5 ~t0:3 ~len:10);
  (* Aligned chunks decompose into whole digits. *)
  Alcotest.check strips "aligned" [ (5, 4); (9, 4) ]
    (Bytecode.strip_bounds ~inner:4 ~t0:5 ~len:8);
  (* Singleton inner digit: every iteration is its own strip. *)
  Alcotest.check strips "inner size 1"
    [ (4, 1); (5, 1); (6, 1) ]
    (Bytecode.strip_bounds ~inner:1 ~t0:4 ~len:3);
  (* A one-iteration chunk strictly inside a digit. *)
  Alcotest.check strips "singleton chunk" [ (7, 1) ]
    (Bytecode.strip_bounds ~inner:5 ~t0:7 ~len:1);
  (* Degenerate inputs produce no strips. *)
  Alcotest.check strips "empty chunk" [] (Bytecode.strip_bounds ~inner:5 ~t0:3 ~len:0);
  Alcotest.check strips "empty space" [] (Bytecode.strip_bounds ~inner:0 ~t0:1 ~len:4);
  (* Coverage: strips tile the chunk exactly, in order. *)
  for inner = 1 to 7 do
    for t0 = 1 to 9 do
      for len = 0 to 11 do
        let ss = Bytecode.strip_bounds ~inner ~t0 ~len in
        let covered = List.fold_left (fun acc (_, n) -> acc + n) 0 ss in
        Alcotest.(check int) "strips cover the chunk" len covered;
        ignore
          (List.fold_left
             (fun expect (t, n) ->
               Alcotest.(check int) "strips are contiguous" expect t;
               Alcotest.(check bool) "strip stays inside one digit" true
                 (n <= inner - ((t - 1) mod inner));
               t + n)
             t0 ss)
      done
    done
  done

(* ---------- unit programs pinning engine behaviour ---------- *)

(* Depth-1 space with a non-unit step: strips advance the loop variable
   by the step itself. *)
let nonunit_step_flat =
  B.program
    ~arrays:[ B.array "V" [ 8 ] ]
    [
      B.doall ~step:(B.int 3) "i" (B.int 1) (B.int 8)
        [ B.store "V" [ B.var "i" ] B.(var "i" * int 2) ];
    ]

(* Non-unit outer step over a unit inner loop: the outer digit changes
   between strips, the inner one within them. *)
let nonunit_step_outer =
  B.program
    ~arrays:[ B.array "W" [ 6; 6 ] ]
    [
      B.doall ~step:(B.int 2) "i" (B.int 1) (B.int 6)
        [
          B.doall "j" (B.int 1) (B.int 6)
            [ B.store "W" [ B.var "i"; B.var "j" ] B.((var "i" * int 10) + var "j") ];
        ];
    ]

(* Innermost digit of size one: every strip is a single iteration. *)
let singleton_inner =
  B.program
    ~arrays:[ B.array "W" [ 6; 6 ] ]
    [
      B.doall "i" (B.int 1) (B.int 6)
        [
          B.doall "j" (B.int 1) (B.int 1)
            [ B.store "W" [ B.var "i"; B.var "j" ] (B.var "i") ];
        ];
    ]

(* Empty coalesced space: no fork, no writes. *)
let empty_space =
  B.program
    ~arrays:[ B.array "V" [ 8 ] ]
    [ B.doall "i" (B.int 1) (B.int 0) [ B.store "V" [ B.int 1 ] (B.real 99.0) ] ]

(* Zero-trip serial loop inside the nest: the promoted element must not
   be loaded or stored at all (W stays at its initial value). *)
let zero_trip_serial =
  B.program
    ~arrays:[ B.array "W" [ 6; 6 ] ]
    [
      B.doall "i" (B.int 1) (B.int 6)
        [
          B.doall "j" (B.int 1) (B.int 6)
            [
              B.for_ "k" (B.int 1) (B.int 0)
                [
                  B.store "W"
                    [ B.var "i"; B.var "j" ]
                    B.(load "W" [ var "i"; var "j" ] + int 1);
                ];
            ];
        ];
    ]

(* Accumulation over a non-unit-step serial loop: the register-promotion
   path with a loop the entry guard sometimes skips. *)
let serial_accumulation =
  B.program
    ~arrays:[ B.array "W" [ 6; 6 ] ]
    [
      B.doall "i" (B.int 1) (B.int 6)
        [
          B.doall "j" (B.int 1) (B.int 6)
            [
              B.for_ ~step:(B.int 2) "k" (B.int 1) (B.int 7)
                [
                  B.store "W"
                    [ B.var "i"; B.var "j" ]
                    B.(
                      load "W" [ var "i"; var "j" ]
                      + (var "i" * var "k") + var "j");
                ];
            ];
        ];
    ]

(* Subscript through [mod]: in bounds at runtime ((i-1) mod 8 + 1 = i),
   but outside the tape's provable affine fragment — the whole-range
   test cannot pass, so every access must take the checked
   per-iteration path and still agree. *)
let mod_subscript =
  B.program
    ~arrays:[ B.array "V" [ 8 ] ]
    [
      B.doall "i" (B.int 1) (B.int 8)
        [
          B.store "V"
            [ B.(((var "i" - int 1) % int 8) + int 1) ]
            (B.var "i");
        ];
    ]

let test_unit_programs () =
  List.iter
    (fun (what, prog) -> check_all_engines ~what prog)
    [
      ("non-unit step, depth 1", nonunit_step_flat);
      ("non-unit outer step", nonunit_step_outer);
      ("singleton inner digit", singleton_inner);
      ("empty space", empty_space);
      ("zero-trip serial loop", zero_trip_serial);
      ("serial accumulation", serial_accumulation);
      ("mod subscript takes checked path", mod_subscript);
    ]

(* ---------- checked fallback on a failing range test ---------- *)

(* The affine range [1..9] exceeds the extent, so the chunk-wide test
   fails, the strips run checked, and the fault surfaces with the same
   message on both engines. *)
let test_range_fail_falls_back () =
  let oob =
    B.program
      ~arrays:[ B.array "V" [ 8 ] ]
      [
        B.doall "i" (B.int 1) (B.int 9)
          [ B.store "V" [ B.var "i" ] (B.var "i") ];
      ]
  in
  let message engine =
    match Exec.run ~domains:1 ~engine oob with
    | _ -> None
    | exception Compile.Error m -> Some m
  in
  let mb = message Exec.Bytecode in
  Alcotest.(check bool) "bytecode engine faults" true (mb <> None);
  Alcotest.(check (option string)) "same fault as the closure engine"
    (message Exec.Closure) mb;
  (* In-bounds prefix of the same shape runs unchecked and agrees. *)
  let ok =
    B.program
      ~arrays:[ B.array "V" [ 8 ] ]
      [
        B.doall "i" (B.int 1) (B.int 8)
          [ B.store "V" [ B.var "i" ] (B.var "i") ];
      ]
  in
  check_all_engines ~what:"in-bounds prefix" ok

(* ---------- sanitized tapes keep every access checked ---------- *)

let sanitizable =
  B.program
    ~arrays:[ B.array "W" [ 6; 6 ] ]
    [
      B.doall "i" (B.int 1) (B.int 6)
        [
          B.doall "j" (B.int 1) (B.int 6)
            [
              B.store "W"
                [ B.var "i"; B.var "j" ]
                B.(load "W" [ var "i"; var "j" ] + var "i" + var "j");
            ];
        ];
    ]

let plan_flags compiled =
  let env = Compile.make_env compiled ~fork:(fun _ _ -> ()) in
  List.map
    (fun (pl : Compile.plan) ->
      match pl.Compile.tape with
      | None -> Alcotest.fail "body should lower to the bytecode tier"
      | Some tape ->
          let lo = Array.map (fun f -> f env) pl.Compile.lo_x in
          let hi = Array.map (fun f -> f env) pl.Compile.hi_x in
          ( tape,
            Bytecode.unsafe_flags
              (Bytecode.prepare tape ~ints:env.Compile.ints ~lo ~hi) ))
    (Compile.plans compiled)

let test_sanitized_tape_stays_checked () =
  (* Instrumented tapes must never take the unsafe path: the shadow
     hooks live on the checked access. *)
  List.iter
    (fun (tape, flags) ->
      Alcotest.(check bool) "tape is sanitized" true (Bytecode.sanitized tape);
      Alcotest.(check bool) "every access stays checked" true
        (Array.for_all not flags))
    (plan_flags (Compile.compile ~sanitize:true sanitizable));
  (* The same in-bounds program without instrumentation does prove its
     ranges and runs unchecked — the contract has teeth. *)
  List.iter
    (fun (tape, flags) ->
      Alcotest.(check bool) "tape is not sanitized" false
        (Bytecode.sanitized tape);
      Alcotest.(check bool) "accesses run unchecked" true
        (Array.for_all Fun.id flags && Array.length flags > 0))
    (plan_flags (Compile.compile sanitizable))

let test_sanitizer_on_bytecode () =
  (* Race-free: clean on the bytecode engine, any domain count. *)
  let st = Eval.run sanitizable in
  List.iter
    (fun domains ->
      let outcome, sh =
        Exec.run_sanitized ~domains ~engine:Exec.Bytecode sanitizable
      in
      Alcotest.(check bool) "race-free program agrees" true
        (Exec.agrees_with_interpreter outcome st);
      Alcotest.(check int) "race-free program is clean" 0
        (snd (Sanitize.results sh)))
    domain_counts;
  (* Racy: every iteration writes W(1,1); with one domain the sanitizer
     sees each cross-iteration conflict deterministically, which also
     pins that instrumented tape ops report per-iteration attribution. *)
  let racy =
    B.program
      ~arrays:[ B.array "W" [ 6; 6 ] ]
      [
        B.doall "i" (B.int 1) (B.int 6)
          [ B.store "W" [ B.int 1; B.int 1 ] (B.var "i") ];
      ]
  in
  let _, sh = Exec.run_sanitized ~domains:1 ~engine:Exec.Bytecode racy in
  Alcotest.(check bool) "racy program is flagged" true
    (snd (Sanitize.results sh) > 0)

(* ---------- differential properties ---------- *)

(* Race-free DOALL nests (writes indexed exactly by the nest indices):
   interpreter, closure, bytecode -O0 and bytecode -O2 agree bit-for-bit
   under every policy and domain count, and the sanitized bytecode run
   is clean. *)
let differential ?(require_tapes = false) arb ~name ~count =
  QCheck.Test.make ~count ~name arb (fun prog ->
      (* With [require_tapes], a silent closure fallback would make the
         property vacuous — every plan must reach the bytecode tier. *)
      ((not require_tapes)
      || List.for_all
           (fun (p : Compile.plan) -> p.Compile.tape <> None)
           (Compile.plans (Compile.compile prog)))
      &&
      let st = Eval.run prog in
      List.for_all
        (fun policy ->
          List.for_all
            (fun domains ->
              List.for_all
                (fun (_, engine, opt_level) ->
                  Exec.agrees_with_interpreter
                    (Exec.run ~domains ~policy ~engine ~opt_level prog)
                    st)
                configs)
            domain_counts)
        all_policies
      &&
      let outcome, sh =
        Exec.run_sanitized ~domains:2 ~engine:Exec.Bytecode prog
      in
      Exec.agrees_with_interpreter outcome st
      && snd (Sanitize.results sh) = 0)

let prop_doall_nests_agree =
  differential Test_runtime.arbitrary_doall_nest ~count:10
    ~name:"bytecode = closure = interpreter (random DOALL nests)"

(* Nests whose innermost statement is a serial accumulation into the
   element the nest indexes — the register-promotion fragment: invariant
   element, unconditional top-level store, optional conditional extra
   store and clamped loads, zero-trip loops included. *)
let serial_accum_gen : Ast.program QCheck.Gen.t =
  let open QCheck.Gen in
  let* ni = int_range 1 6 in
  let* nj = int_range 1 6 in
  let* klo = int_range 1 3 in
  let* ktrips = int_range 0 4 in
  let* kstep = int_range 1 3 in
  let* with_load = bool in
  let+ with_cond = bool in
  let khi = klo + (ktrips * kstep) - 1 in
  let wij = Ast.Load ("W", [ Ast.Var "i"; Ast.Var "j" ]) in
  let acc =
    let base = Ast.Bin (Ast.Add, wij, Bin (Mul, Var "i", Var "k")) in
    if with_load then
      Ast.Bin (Ast.Add, base, Load ("V", [ Gen.clamp 8 (Ast.Var "k") ]))
    else Ast.Bin (Ast.Add, base, Var "j")
  in
  let store = Ast.Assign (Elem ("W", [ Var "i"; Var "j" ]), acc) in
  let cond_store =
    Ast.If
      ( Cmp (Le, Var "k", Int 2),
        [ Ast.Assign (Elem ("W", [ Var "i"; Var "j" ]), Bin (Add, wij, Int 1)) ],
        [] )
  in
  let kloop =
    Ast.For
      {
        index = "k";
        lo = Int klo;
        hi = Int khi;
        step = Int kstep;
        par = Serial;
        body = (if with_cond then [ store; cond_store ] else [ store ]);
      }
  in
  let doall index hi body : Ast.stmt =
    For { index; lo = Int 1; hi = Int hi; step = Int 1; par = Parallel; body }
  in
  {
    Ast.arrays =
      [ { Ast.arr_name = "W"; dims = [ 6; 6 ] };
        { Ast.arr_name = "V"; dims = [ 8 ] } ];
    scalars = [];
    body =
      [
        doall "q" 8 [ Ast.Assign (Elem ("V", [ Var "q" ]), Bin (Mul, Var "q", Int 3)) ];
        doall "i" ni [ doall "j" nj [ kloop ] ];
      ];
  }

let prop_promotion_agrees =
  differential
    (QCheck.make ~print:Pretty.program_to_string serial_accum_gen)
    ~count:12
    ~name:"bytecode = closure = interpreter (serial accumulation nests)"

(* Branchy bodies over variable-step serial loops — the fragment the SSA
   pipeline streams with shared store slots (exclusive if/else arms
   writing the same element) and run-time offset bumps (serial step
   depending on the outer index). The accumulator scalar is privatized
   per iteration by writing it before the k loop. *)
let branchy_varstep_gen : Ast.program QCheck.Gen.t =
  let open QCheck.Gen in
  let* ni = int_range 1 5 in
  let* nj = int_range 1 5 in
  let* klo = int_range 1 3 in
  let* khi = int_range 0 9 in
  let* step_bias = int_range 0 2 in
  let* with_else = bool in
  let+ divisor = int_range 2 3 in
  let aik =
    Ast.Bin
      (Ast.Mul, Load ("A", [ Ast.Var "k" ]), Load ("A", [ Ast.Var "i" ]))
  in
  let kloop =
    Ast.For
      {
        index = "k";
        lo = Int klo;
        hi = Int khi;
        step =
          (if step_bias = 0 then Ast.Var "i"
           else Bin (Add, Var "i", Int step_bias));
        par = Serial;
        body = [ Ast.Assign (Scalar "s", Bin (Add, Var "s", aik)) ];
      }
  in
  let wij subexpr = Ast.Assign (Elem ("W", [ Var "i"; Var "j" ]), subexpr) in
  let branch =
    Ast.If
      ( Cmp
          ( Le,
            Bin (Mod, Bin (Add, Var "i", Bin (Mul, Int 2, Var "j")), Int divisor),
            Int 0 ),
        [ wij (Bin (Mul, Var "s", Real 0.25)) ],
        if with_else then [ wij (Bin (Add, Var "s", Real 1.0)) ] else [] )
  in
  let doall index hi body : Ast.stmt =
    For { index; lo = Int 1; hi = Int hi; step = Int 1; par = Parallel; body }
  in
  {
    Ast.arrays =
      [
        { Ast.arr_name = "A"; dims = [ 9 ] };
        { Ast.arr_name = "W"; dims = [ 6; 6 ] };
      ];
    scalars = [ { Ast.sc_name = "s"; sc_kind = Kreal; sc_init = 0.0 } ];
    body =
      [
        doall "q" 9
          [ Ast.Assign (Elem ("A", [ Var "q" ]), Bin (Mul, Var "q", Int 3)) ];
        doall "i" ni
          [
            doall "j" nj
              [ Ast.Assign (Scalar "s", Real 0.0); kloop; branch ];
          ];
      ];
  }

let prop_branchy_varstep_agrees =
  differential ~require_tapes:true
    (QCheck.make ~print:Pretty.program_to_string branchy_varstep_gen)
    ~count:12
    ~name:"bytecode = closure = interpreter (branchy variable-step nests)"

(* ---------- unrolled strips: remainder handling, traces, metrics ---------- *)

(* A 2-level DOALL whose inner digit has exactly [trips] iterations, so
   every strip the bytecode tier executes has length [trips]: with the
   x4-unrolled body that exercises 0 full groups + remainders 1 and 3,
   exactly one group (no remainder), and full groups + remainder. The
   serial k-loop gives the optimizer streamed offsets and promotion. *)
let trip_prog ~trips =
  let wij = Ast.Load ("W", [ Ast.Var "i"; Ast.Var "j" ]) in
  let store =
    Ast.Assign
      ( Elem ("W", [ Var "i"; Var "j" ]),
        Bin (Add, wij, Bin (Mul, Var "i", Var "k")) )
  in
  let kloop =
    Ast.For
      { index = "k"; lo = Int 1; hi = Int 3; step = Int 1; par = Serial;
        body = [ store ] }
  in
  let doall index hi body : Ast.stmt =
    For { index; lo = Int 1; hi = Int hi; step = Int 1; par = Parallel; body }
  in
  {
    Ast.arrays = [ { Ast.arr_name = "W"; dims = [ 7; 8 ] } ];
    scalars = [];
    body = [ doall "i" 6 [ doall "j" trips [ kloop ] ] ];
  }

(* Branchy variant with the same strip geometry: the store is picked by
   a data-dependent branch (exclusive arms writing the same element, so
   the optimizer shares one stream slot across them) and the k loop's
   step is the outer index (a run-time offset bump). The x4-unrolled
   copies' remainder handling must match -O0 on this shape too. *)
let trip_prog_branchy ~trips =
  let wij = Ast.Load ("W", [ Ast.Var "i"; Ast.Var "j" ]) in
  let store e = Ast.Assign (Elem ("W", [ Var "i"; Var "j" ]), e) in
  let branch =
    Ast.If
      ( Cmp (Le, Bin (Mod, Bin (Add, Var "j", Var "k"), Int 2), Int 0),
        [ store (Bin (Add, wij, Bin (Mul, Var "i", Var "k"))) ],
        [ store (Bin (Add, wij, Int 1)) ] )
  in
  let kloop =
    Ast.For
      { index = "k"; lo = Int 1; hi = Int 5; step = Var "i"; par = Serial;
        body = [ branch ] }
  in
  let doall index hi body : Ast.stmt =
    For { index; lo = Int 1; hi = Int hi; step = Int 1; par = Parallel; body }
  in
  {
    Ast.arrays = [ { Ast.arr_name = "W"; dims = [ 7; 8 ] } ];
    scalars = [];
    body = [ doall "i" 6 [ doall "j" trips [ kloop ] ] ];
  }

(* Everything observable must be identical between -O0 and -O2: results,
   the traced chunk decomposition, and the scheduler metrics derived
   from it. Timestamps are the only fields allowed to differ. *)
let test_unrolled_strips_identical () =
  List.iter
    (fun (what, build) ->
  List.iter
    (fun trips ->
      let prog : Ast.program = build ~trips in
      let st = Eval.run prog in
      List.iter
        (fun domains ->
          let run lvl =
            let compiled = Compile.compile ~opt_level:lvl prog in
            List.iter
              (fun (p : Compile.plan) ->
                if p.Compile.tape = None then
                  Alcotest.failf "%s: plan did not lower to the bytecode tier"
                    what)
              (Compile.plans compiled);
            let tracer = Trace.create ~p:domains () in
            let outcome =
              Exec.run_compiled ~domains ~policy:Policy.Static_block
                ~engine:Exec.Bytecode ~trace:tracer compiled
            in
            (outcome, Trace.snapshot tracer)
          in
          let o0, t0 = run 0 in
          let o2, t2 = run 2 in
          if not (Exec.agrees_with_interpreter o0 st) then
            Alcotest.failf
              "%s trips=%d domains=%d: -O0 differs from interpreter" what trips
              domains;
          if o0.Exec.arrays <> o2.Exec.arrays
             || o0.Exec.scalars <> o2.Exec.scalars then
            Alcotest.failf "%s trips=%d domains=%d: -O2 result differs from -O0"
              what trips domains;
          (* Chunks are sorted by timestamp in the snapshot; re-sort by
             coalesced position so only schedule-invariant fields are
             compared. *)
          let shape (tr : Trace.t) =
            ( Array.to_list tr.Trace.chunks
              |> List.map (fun (c : Trace.chunk) ->
                     (c.Trace.epoch, c.Trace.worker, c.Trace.start, c.Trace.len))
              |> List.sort compare,
              Array.to_list tr.Trace.forks
              |> List.map (fun (f : Trace.fork) ->
                     ( f.Trace.f_epoch,
                       Policy.name f.Trace.f_policy,
                       f.Trace.f_n,
                       f.Trace.f_p )) )
          in
          if shape t0 <> shape t2 then
            Alcotest.failf "%s trips=%d domains=%d: trace shape differs" what
              trips domains;
          let counts (tr : Trace.t) =
            let m = Metrics.of_trace tr in
            ( m.Metrics.total_chunks,
              m.Metrics.total_iters,
              List.map
                (fun (f : Metrics.fork_metrics) ->
                  ( f.Metrics.n,
                    f.Metrics.p,
                    f.Metrics.chunks_dispatched,
                    f.Metrics.iterations ))
                m.Metrics.forks )
          in
          if counts t0 <> counts t2 then
            Alcotest.failf "%s trips=%d domains=%d: metrics differ" what trips
              domains)
        [ 1; 2 ])
    [ 1; 3; 4; 5; 7 ])
    [ ("plain", trip_prog); ("branchy variable-step", trip_prog_branchy) ]

(* The sanitizer must see the exact same accesses at every level — the
   optimizer leaves instrumented tapes untouched, so reports and summary
   are identical, on race-free and racy programs alike. *)
let test_sanitizer_identical_across_opt () =
  let racy =
    B.program
      ~arrays:[ B.array "W" [ 6; 6 ] ]
      [
        B.doall "i" (B.int 1) (B.int 6)
          [ B.store "W" [ B.int 1; B.int 1 ] (B.var "i") ];
      ]
  in
  List.iter
    (fun prog ->
      let observe lvl =
        let _, sh =
          Exec.run_sanitized ~domains:1 ~engine:Exec.Bytecode ~opt_level:lvl
            prog
        in
        (Sanitize.results sh, Sanitize.summary_to_string sh)
      in
      if observe 0 <> observe 2 then
        Alcotest.fail "sanitizer output differs between -O0 and -O2")
    [
      sanitizable;
      racy;
      (* branchy body and variable-step serial loop: the shapes the SSA
         pipeline now optimizes must still leave sanitized tapes alone *)
      Kernels.cond_stencil ~n:12;
      Kernels.tri_gather ~n:10;
      trip_prog_branchy ~trips:3;
    ]

let suite =
  [
    Alcotest.test_case "strip bounds pinned" `Quick test_strip_bounds;
    Alcotest.test_case "unit programs across engines" `Quick
      test_unit_programs;
    Alcotest.test_case "failing range test falls back checked" `Quick
      test_range_fail_falls_back;
    Alcotest.test_case "sanitized tape stays checked" `Quick
      test_sanitized_tape_stays_checked;
    Alcotest.test_case "sanitizer on bytecode engine" `Quick
      test_sanitizer_on_bytecode;
    Alcotest.test_case "unrolled strips: -O2 = -O0 (results, traces, metrics)"
      `Quick test_unrolled_strips_identical;
    Alcotest.test_case "sanitizer identical across opt levels" `Quick
      test_sanitizer_identical_across_opt;
    Gen.to_alcotest prop_doall_nests_agree;
    Gen.to_alcotest prop_promotion_agrees;
    Gen.to_alcotest prop_branchy_varstep_agrees;
  ]

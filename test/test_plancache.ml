(* Plan cache: hit/miss accounting, key discrimination (sanitize flag,
   optimizer level, engine salt), the no-cache bypass, and the on-disk
   layer including corrupt-file tolerance.

   The invariant under test: a cache hit must be indistinguishable from
   a cold compile — same plan tapes, same register numbering, same
   results — while a sanitized compile must never see an unsanitized
   tape (and vice versa). *)

open Loopcoal
module Compile = Runtime.Compile
module Exec = Runtime.Exec
module Plancache = Runtime.Plancache
module Bytecode = Runtime.Bytecode
module B = Builder

let prog =
  B.program
    ~arrays:[ B.array "W" [ 6; 6 ] ]
    [
      B.doall "i" (B.int 1) (B.int 6)
        [
          B.doall "j" (B.int 1) (B.int 6)
            [
              B.store "W"
                [ B.var "i"; B.var "j" ]
                B.(load "W" [ var "i"; var "j" ] + var "i" + var "j");
            ];
        ];
    ]

let other_prog =
  B.program
    ~arrays:[ B.array "V" [ 9 ] ]
    [ B.doall "q" (B.int 1) (B.int 9) [ B.store "V" [ B.var "q" ] (B.var "q") ] ]

let stats () = Counters.plan_cache_stats ()

let check_stats what (h, m) =
  Alcotest.(check (pair int int)) what (h, m) (stats ())

let tapes compiled =
  List.map (fun (p : Compile.plan) -> p.Compile.tape) (Compile.plans compiled)

let test_hit_miss_counters () =
  Counters.reset ();
  let cache = Plancache.create () in
  let c1 = Compile.compile ~cache prog in
  check_stats "first compile misses" (0, 1);
  let c2 = Compile.compile ~cache prog in
  check_stats "second compile hits" (1, 1);
  let _ = Compile.compile ~cache other_prog in
  check_stats "different program misses" (1, 2);
  (* A hit replays the cold compile exactly: same tapes, same results. *)
  Alcotest.(check bool) "hit replays identical tapes" true
    (tapes c1 = tapes c2);
  let o1 = Exec.run_compiled ~domains:2 c1 in
  let o2 = Exec.run_compiled ~domains:2 c2 in
  Alcotest.(check bool) "hit runs identically" true
    (o1.Exec.arrays = o2.Exec.arrays && o1.Exec.scalars = o2.Exec.scalars)

let test_key_discrimination () =
  Counters.reset ();
  let cache = Plancache.create () in
  let _ = Compile.compile ~cache prog in
  (* Sanitized compile after an unsanitized one must miss, and its tapes
     must carry the instrumentation flag. *)
  let cs = Compile.compile ~cache ~sanitize:true prog in
  check_stats "sanitize changes the key" (0, 2);
  List.iter
    (fun t ->
      match t with
      | None -> Alcotest.fail "sanitized plan should lower to a tape"
      | Some t ->
          Alcotest.(check bool) "cached-path tape is sanitized" true
            (Bytecode.sanitized t))
    (tapes cs);
  (* ... and re-compiling each flavor now hits its own entry. *)
  let cs2 = Compile.compile ~cache ~sanitize:true prog in
  let cu = Compile.compile ~cache prog in
  check_stats "each flavor has its own entry" (2, 2);
  Alcotest.(check bool) "sanitized hit stays sanitized" true
    (tapes cs = tapes cs2);
  List.iter
    (fun t ->
      match t with
      | None -> Alcotest.fail "plan should lower to a tape"
      | Some t ->
          Alcotest.(check bool) "unsanitized hit stays unsanitized" false
            (Bytecode.sanitized t))
    (tapes cu);
  (* Opt level and engine salt are part of the key too. *)
  let _ = Compile.compile ~cache ~opt_level:0 prog in
  check_stats "opt level changes the key" (2, 3);
  let _ = Compile.compile ~cache ~cache_salt:"closure" prog in
  check_stats "engine salt changes the key" (2, 4)

let test_no_cache_bypass () =
  Counters.reset ();
  let c1 = Compile.compile prog in
  let c2 = Compile.compile prog in
  check_stats "no cache, no counter traffic" (0, 0);
  Alcotest.(check bool) "uncached compiles still agree" true
    (tapes c1 = tapes c2)

let with_temp_dir f =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "loopc-plancache-%d" (Random.bits ()))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists d then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat d f))
          (Sys.readdir d);
        Sys.rmdir d
      end)
    (fun () -> f d)

let test_disk_persistence () =
  with_temp_dir (fun dir ->
      Counters.reset ();
      let c1 = Compile.compile ~cache:(Plancache.create ~dir ()) prog in
      check_stats "cold disk cache misses" (0, 1);
      Alcotest.(check bool) "one entry written" true
        (Sys.readdir dir |> Array.exists (fun f -> Filename.check_suffix f ".plan"));
      (* A fresh cache instance — a new process, effectively — finds the
         entry on disk and replays it. *)
      let c2 = Compile.compile ~cache:(Plancache.create ~dir ()) prog in
      check_stats "fresh instance hits from disk" (1, 1);
      Alcotest.(check bool) "disk hit replays identical tapes" true
        (tapes c1 = tapes c2);
      (* Corrupt every entry: the next fresh instance must fall back to
         a miss and recompile, not crash. *)
      Array.iter
        (fun f ->
          if Filename.check_suffix f ".plan" then begin
            let oc = open_out_bin (Filename.concat dir f) in
            output_string oc "not a marshaled plan";
            close_out oc
          end)
        (Sys.readdir dir);
      let c3 = Compile.compile ~cache:(Plancache.create ~dir ()) prog in
      check_stats "corrupt entry is a miss" (1, 2);
      Alcotest.(check bool) "recompile after corruption agrees" true
        (tapes c1 = tapes c3))

(* A well-formed entry marshaled under an older format version — the
   tape layout it carries may not match the current [Bytecode.tape] —
   must be skipped as a miss, not deserialized or treated as an error. *)
let test_stale_format_is_a_miss () =
  with_temp_dir (fun dir ->
      Counters.reset ();
      let c1 = Compile.compile ~cache:(Plancache.create ~dir ()) prog in
      check_stats "cold disk cache misses" (0, 1);
      Array.iter
        (fun f ->
          if Filename.check_suffix f ".plan" then begin
            let oc = open_out_bin (Filename.concat dir f) in
            output_value oc (2, { Plancache.e_plans = [] });
            close_out oc
          end)
        (Sys.readdir dir);
      let c2 = Compile.compile ~cache:(Plancache.create ~dir ()) prog in
      check_stats "stale format version is a miss" (0, 2);
      Alcotest.(check bool) "recompile after format skew agrees" true
        (tapes c1 = tapes c2);
      let o1 = Exec.run_compiled ~domains:2 c1 in
      let o2 = Exec.run_compiled ~domains:2 c2 in
      Alcotest.(check bool) "recompile runs identically" true
        (o1.Exec.arrays = o2.Exec.arrays && o1.Exec.scalars = o2.Exec.scalars))

(* ---------- winning-recipe side files ---------- *)

let test_recipe_side_files () =
  with_temp_dir (fun dir ->
      let k = Plancache.key ~sanitize:false ~opt_level:2 ~salt:"search" prog in
      let c1 = Plancache.create ~dir () in
      Alcotest.(check bool) "cold cache has no recipe" true
        (Plancache.find_recipe c1 k = None);
      Plancache.store_recipe c1 k "interchange+tile(8)";
      Alcotest.(check (option string)) "memory hit" (Some "interchange+tile(8)")
        (Plancache.find_recipe c1 k);
      Alcotest.(check bool) "side file written" true
        (Sys.readdir dir
        |> Array.exists (fun f -> Filename.check_suffix f ".recipe"));
      (* A fresh instance — a new process — replays from disk. *)
      let c2 = Plancache.create ~dir () in
      Alcotest.(check (option string)) "disk hit" (Some "interchange+tile(8)")
        (Plancache.find_recipe c2 k);
      (* Another key stays independent. *)
      let k' =
        Plancache.key ~sanitize:false ~opt_level:2 ~salt:"search" other_prog
      in
      Alcotest.(check bool) "other key misses" true
        (Plancache.find_recipe c2 k' = None);
      (* An empty/whitespace side file is a miss, not Some "". *)
      let oc = open_out (Filename.concat dir (k' ^ ".recipe")) in
      output_string oc "\n";
      close_out oc;
      Alcotest.(check bool) "blank side file is a miss" true
        (Plancache.find_recipe c2 k' = None))

(* ---------- LOOPC_CACHE_MAX_MB eviction ---------- *)

let with_cache_cap mb f =
  let old = Sys.getenv_opt "LOOPC_CACHE_MAX_MB" in
  Unix.putenv "LOOPC_CACHE_MAX_MB" mb;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "LOOPC_CACHE_MAX_MB" (Option.value old ~default:""))
    f

let evict_count () =
  Registry.value (Registry.counter "plan_cache.evict")

let test_size_cap_evicts_lru () =
  with_temp_dir (fun dir ->
      Unix.mkdir dir 0o755;
      (* Three 1 MiB decoys with staggered mtimes, oldest first. *)
      let mib = String.make (1024 * 1024) 'x' in
      let decoy i = Filename.concat dir (Printf.sprintf "decoy%d.plan" i) in
      List.iter
        (fun i ->
          let oc = open_out_bin (decoy i) in
          output_string oc mib;
          close_out oc;
          (* mtimes 30,20,10 seconds in the past: decoy 0 is the LRU *)
          let t = Unix.gettimeofday () -. float_of_int (10 * (3 - i)) in
          Unix.utimes (decoy i) t t)
        [ 0; 1; 2 ];
      (* Non-cache files are never touched by the cap. *)
      let keep = Filename.concat dir "README.txt" in
      let oc = open_out keep in
      output_string oc mib;
      close_out oc;
      with_cache_cap "2" (fun () ->
          Counters.reset ();
          Plancache.enforce_cap dir;
          Alcotest.(check bool) "oldest decoy evicted" false
            (Sys.file_exists (decoy 0));
          Alcotest.(check bool) "newer decoys survive" true
            (Sys.file_exists (decoy 1) && Sys.file_exists (decoy 2));
          Alcotest.(check bool) "non-cache file untouched" true
            (Sys.file_exists keep);
          Alcotest.(check int) "eviction counted" 1 (evict_count ());
          (* Storing through a capped cache keeps the newest entries:
             the store itself must survive its own enforcement. *)
          let k =
            Plancache.key ~sanitize:false ~opt_level:2 ~salt:"test" prog
          in
          let c = Plancache.create ~dir () in
          Plancache.store_recipe c k "hoist";
          Alcotest.(check (option string)) "fresh store survives cap"
            (Some "hoist")
            (Plancache.find_recipe (Plancache.create ~dir ()) k)))

let test_cap_unset_is_noop () =
  with_temp_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let f = Filename.concat dir "x.plan" in
      let oc = open_out_bin f in
      output_string oc (String.make 4096 'y');
      close_out oc;
      with_cache_cap "" (fun () ->
          Plancache.enforce_cap dir;
          Alcotest.(check bool) "no cap, nothing evicted" true
            (Sys.file_exists f));
      with_cache_cap "not-a-number" (fun () ->
          Plancache.enforce_cap dir;
          Alcotest.(check bool) "unparsable cap ignored" true
            (Sys.file_exists f)))

let suite =
  [
    Alcotest.test_case "hit/miss counters" `Quick test_hit_miss_counters;
    Alcotest.test_case "key discrimination (sanitize, opt level, salt)" `Quick
      test_key_discrimination;
    Alcotest.test_case "no cache is a true bypass" `Quick test_no_cache_bypass;
    Alcotest.test_case "disk persistence and corruption tolerance" `Quick
      test_disk_persistence;
    Alcotest.test_case "stale on-disk format is a miss" `Quick
      test_stale_format_is_a_miss;
    Alcotest.test_case "winning-recipe side files" `Quick
      test_recipe_side_files;
    Alcotest.test_case "size cap evicts least-recently-used" `Quick
      test_size_cap_evicts_lru;
    Alcotest.test_case "unset/unparsable cap is a no-op" `Quick
      test_cap_unset_is_noop;
  ]

(* Golden tests for the SSA optimizer pipeline, written against the
   stable textual tape format ([Bytecode.pp_tape], the same text
   [loopc run --dump-tape] prints).

   Each test compiles a pinned kernel with [Compile.compile ~tape_dump]
   and compares the dump of one pass verbatim. The texts below are the
   contract: register numbering, instruction spelling and access lines
   may only change together with a deliberate format or pipeline
   change — update the goldens when they do, never loosen them. *)

open Loopcoal
module Compile = Runtime.Compile
module Exec = Runtime.Exec
module Tapeopt = Runtime.Tapeopt
module Bytecode = Runtime.Bytecode
module B = Builder

(* Capture every (plan, pass, text) triple a compile reports. *)
let dumps prog =
  let acc = ref [] in
  let dump ~plan ~pass t = acc := (plan, pass, Bytecode.pp_tape t) :: !acc in
  ignore (Compile.compile ~tape_dump:dump prog);
  List.rev !acc

let pass_of prog ~plan ~pass =
  match
    List.find_opt (fun (p, n, _) -> p = plan && n = pass) (dumps prog)
  with
  | Some (_, _, text) -> text
  | None -> Alcotest.failf "no dump for plan %d pass %s" plan pass

let check_golden what expected got =
  if got <> expected then
    Alcotest.failf "%s: dump differs from golden\n--- expected ---\n%s\n--- got ---\n%s"
      what expected got

(* ---------- GVN: repeated subscript chains collapse ---------- *)

(* The clamped square subscript [min(i*i, 40)] is computed twice — once
   for the load, once for the store of the same element. Dominator-tree
   GVN must rewrite the whole second chain to one move of the first
   result ([i6 <- 0 + 1*i3]) and DCE must drop the dead intermediates. *)
let gvn_prog =
  B.program
    ~arrays:[ B.array "V" [ 40 ] ]
    [
      B.doall "i" (B.int 1) (B.int 6)
        [
          B.store "V"
            [ B.imin B.(var "i" * var "i") (B.int 40) ]
            B.(load "V" [ B.imin B.(var "i" * var "i") (B.int 40) ] + real 1.0);
        ];
    ]

let gvn_lower_golden =
  "pre:\n\
  \   0: r0 <- 0x1p+0\n\
   ops:\n\
  \   0: i1 <- i0 * i0\n\
  \   1: i2 <- 40\n\
  \   2: i3 <- min i1 i2\n\
  \   3: i4 <- i0 * i0\n\
  \   4: i5 <- 40\n\
  \   5: i6 <- min i4 i5\n\
  \   6: r1 <- load[1]\n\
  \   7: r2 <- r1 + r0\n\
  \   8: store[0] <- r2\n\
   accs:\n\
  \   0: V  inv = -1  var = 0 + 1*i3  off = inv + 1*i3\n\
  \   1: V  inv = -1  var = 0 + 1*i6  off = inv + 1*i6\n\
   streams=0 sanitize=false\n"

let gvn_golden =
  "pre:\n\
  \   0: r0 <- 0x1p+0\n\
   ops:\n\
  \   0: i1 <- i0 * i0\n\
  \   1: i2 <- 40\n\
  \   2: i3 <- min i1 i2\n\
  \   3: i6 <- 0 + 1*i3\n\
  \   4: r1 <- load[1]\n\
  \   5: r2 <- r1 + r0\n\
  \   6: store[0] <- r2\n\
   accs:\n\
  \   0: V  inv = -1  var = 0 + 1*i3  off = inv + 1*i3\n\
  \   1: V  inv = -1  var = 0 + 1*i6  off = inv + 1*i6\n\
   streams=0 sanitize=false\n"

let test_gvn_golden () =
  check_golden "gvn kernel, lower" gvn_lower_golden
    (pass_of gvn_prog ~plan:0 ~pass:"lower");
  check_golden "gvn kernel, gvn" gvn_golden
    (pass_of gvn_prog ~plan:0 ~pass:"gvn")

(* ---------- LICM: invariant load hoisted out of a serial loop ---------- *)

(* A's subscript chain and its load do not depend on the serial j loop;
   cross-block LICM must move them above the loop top (the back edge
   retargets from op 2 to op 6) and float the strip-invariant bound
   snapshots into the preamble. The W element does depend on j, so its
   load and store stay put. *)
let licm_prog =
  B.program
    ~arrays:[ B.array "A" [ 9 ]; B.array "W" [ 6; 8 ] ]
    [
      B.doall "i" (B.int 1) (B.int 6)
        [
          B.for_ "j" (B.int 1) (B.int 8)
            [
              B.store "W"
                [ B.var "i"; B.var "j" ]
                B.(
                  load "W" [ var "i"; var "j" ]
                  + load "A" [ B.imin B.((var "i" * var "i") + int 1) (B.int 9) ]);
            ];
        ];
    ]

let licm_golden =
  "pre:\n\
  \   0: i3 <- 8\n\
  \   1: i6 <- 9\n\
   ops:\n\
  \   0: i2 <- 1\n\
  \   1: jii gt i2 i3 -> 10\n\
  \   2: i4 <- i0 * i0\n\
  \   3: i5 <- 1 + 1*i4\n\
  \   4: i7 <- min i5 i6\n\
  \   5: r0 <- load[1]\n\
  \   6: r1 <- load[2]\n\
  \   7: r2 <- r1 + r0\n\
  \   8: store[0] <- r2\n\
  \   9: loopc i2 += 1 while <= i3 -> 6\n\
   accs:\n\
  \   0: W  inv = -9  var = 0 + 8*i0 + 1*i2  off = inv + 8*i0 + 1*i2\n\
  \   1: A  inv = -1  var = 0 + 1*i7  off = inv + 1*i7\n\
  \   2: W  inv = -9  var = 0 + 8*i0 + 1*i2  off = inv + 8*i0 + 1*i2\n\
   streams=0 sanitize=false\n"

let test_licm_golden () =
  check_golden "licm kernel, licm" licm_golden
    (pass_of licm_prog ~plan:0 ~pass:"licm")

(* ---------- dump plumbing ---------- *)

(* Every plan reports the pipeline stages in order, and the dumped
   stages are exactly [Tapeopt.pass_names] at -O2. *)
let test_pass_sequence () =
  List.iter
    (fun prog ->
      let seq =
        List.filter_map
          (fun (p, n, _) -> if p = 0 then Some n else None)
          (dumps prog)
      in
      Alcotest.(check (list string)) "stages in pipeline order"
        Tapeopt.pass_names seq)
    [ gvn_prog; licm_prog ];
  (* At -O0 only the raw lowering is reported. *)
  let acc = ref [] in
  ignore
    (Compile.compile ~opt_level:0
       ~tape_dump:(fun ~plan:_ ~pass t ->
         acc := (pass, Bytecode.pp_tape t) :: !acc)
       gvn_prog);
  Alcotest.(check (list string)) "-O0 dumps lowering only" [ "lower" ]
    (List.map fst !acc)

(* ---------- LICM aliasing: loads never hoist over same-array stores ---------- *)

(* The load A[i] has region-invariant subscripts, but the loop also
   stores into A — and with i = 2 the store hits the loaded element, so
   each iteration must reload. A hoisted (stale) load yields s = 15
   instead of 48. *)
let licm_alias_prog =
  B.program
    ~arrays:[ B.array "A" [ 4 ] ]
    ~scalars:[ B.real_scalar "s" ]
    [
      B.doall "k" (B.int 1) (B.int 4) [ B.store "A" [ B.var "k" ] (B.real 3.0) ];
      B.doall "i" (B.int 2) (B.int 2)
        [
          B.for_ "j" (B.int 1) (B.int 5)
            [
              B.assign "s" B.(var "s" + load "A" [ var "i" ]);
              B.store "A" [ B.int 2 ] (B.var "s");
            ];
        ];
    ]

let test_licm_alias () =
  let st = Eval.run licm_alias_prog in
  List.iter
    (fun lvl ->
      let outcome =
        Exec.run ~domains:1 ~engine:Exec.Bytecode ~opt_level:lvl
          licm_alias_prog
      in
      if not (Exec.agrees_with_interpreter outcome st) then
        Alcotest.failf "aliased invariant load: -O%d differs from interpreter"
          lvl)
    [ 0; 1; 2 ]

(* The pinned rewrites are semantics-preserving: both kernels agree with
   the interpreter at every opt level. *)
let test_golden_kernels_agree () =
  List.iter
    (fun (what, prog) ->
      let st = Eval.run prog in
      List.iter
        (fun lvl ->
          let outcome =
            Exec.run ~domains:2 ~engine:Exec.Bytecode ~opt_level:lvl prog
          in
          if not (Exec.agrees_with_interpreter outcome st) then
            Alcotest.failf "%s: -O%d differs from interpreter" what lvl)
        [ 0; 1; 2 ])
    [ ("gvn kernel", gvn_prog); ("licm kernel", licm_prog) ]

let suite =
  [
    Alcotest.test_case "gvn golden dump" `Quick test_gvn_golden;
    Alcotest.test_case "licm golden dump" `Quick test_licm_golden;
    Alcotest.test_case "dump reports the pass pipeline" `Quick
      test_pass_sequence;
    Alcotest.test_case "licm never hoists over same-array stores" `Quick
      test_licm_alias;
    Alcotest.test_case "golden kernels agree with interpreter" `Quick
      test_golden_kernels_agree;
  ]

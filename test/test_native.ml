(* Native execution tier: plans pretty-printed to OCaml, compiled out
   of process and Dynlinked back in must be observationally identical
   to the bytecode tier — bit-identical arrays and scalars, the same
   chunk decomposition in traces and the same scheduler metrics — on
   every corpus program, at every opt level, on 1, 2 and 4 domains.

   Every test (except the codegen-shape and CLI ones) skips cleanly
   when the host has no usable ocamlopt, mirroring the executor's own
   per-plan fallback. *)

open Loopcoal
module B = Builder
module Exec = Runtime.Exec
module Compile = Runtime.Compile
module Natgen = Runtime.Natgen

(* Keep native [.cmxs] artifacts (and any plan-cache traffic from the
   CLI subprocess below) out of the user's real cache directory. The
   putenv runs at module initialization, before any suite executes. *)
let scratch_cache =
  let d = Filename.temp_file "loopcoal_natcache" "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  at_exit (fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote d))));
  Unix.putenv "XDG_CACHE_HOME" d;
  d

let toolchain = lazy (Natgen.available ())

let require_toolchain () =
  match Lazy.force toolchain with
  | Ok () -> ()
  | Error _ -> Alcotest.skip ()

(* ---------- five-way differential over the full corpus ---------- *)

(* Interpreter oracle plus closure, raw and optimized bytecode, and the
   native tier at both opt levels. Native outcomes must additionally be
   *exactly* equal to same-level bytecode outcomes, scalars included:
   the generated code preserves the tape's float operation structure,
   so there is no tolerance to hide behind. *)
let configs =
  [
    ("closure", Exec.Closure, 2);
    ("bytecode -O0", Exec.Bytecode, 0);
    ("bytecode -O2", Exec.Bytecode, 2);
    ("native -O0", Exec.Native, 0);
    ("native -O2", Exec.Native, 2);
  ]

let check_five_way ?(domain_counts = [ 1; 2; 4 ]) ~what prog =
  let st = Eval.run prog in
  List.iter
    (fun policy ->
      List.iter
        (fun domains ->
          let outcomes =
            List.map
              (fun (cname, engine, opt_level) ->
                let o = Exec.run ~domains ~policy ~engine ~opt_level prog in
                if not (Exec.agrees_with_interpreter o st) then
                  Alcotest.failf "%s: %s (%d domains, %s) differs from interp"
                    what cname domains (Policy.name policy);
                (cname, opt_level, o))
              configs
          in
          List.iter
            (fun (cname, lvl, (o : Exec.outcome)) ->
              if String.length cname >= 6 && String.sub cname 0 6 = "native"
              then
                let _, _, ob =
                  List.find (fun (c, l, _) -> c <> cname && l = lvl) outcomes
                in
                if o.Exec.arrays <> ob.Exec.arrays then
                  Alcotest.failf
                    "%s: %s arrays not bit-identical to bytecode (%d domains)"
                    what cname domains
                else if o.Exec.scalars <> ob.Exec.scalars then
                  Alcotest.failf
                    "%s: %s scalars not bit-identical to bytecode (%d domains)"
                    what cname domains)
            outcomes)
        domain_counts)
    [ Policy.Static_block; Policy.Gss ]

let test_kernels_five_way () =
  require_toolchain ();
  List.iter
    (fun name ->
      check_five_way ~what:name ((Option.get (Kernels.by_name name)) ()))
    Kernels.all_names

let example_files () =
  let dir = "../examples/programs" in
  let list d =
    if Sys.file_exists d && Sys.is_directory d then
      Sys.readdir d |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".loop")
      |> List.map (Filename.concat d)
    else []
  in
  List.sort String.compare (list dir @ list (Filename.concat dir "diagnostics"))

let test_examples_five_way () =
  require_toolchain ();
  let files = example_files () in
  Alcotest.(check bool)
    (Printf.sprintf "example corpus found (%d files)" (List.length files))
    true
    (List.length files >= 10);
  List.iter
    (fun file ->
      match Driver.load_file file with
      | Error m -> Alcotest.failf "%s: %s" file m
      | Ok p ->
          check_five_way ~domain_counts:[ 1; 4 ]
            ~what:(Filename.basename file) p)
    files

(* ---------- QCheck: the promotion and streaming fragments ---------- *)

(* The register-promotion and offset-streaming fragments are where the
   generated code diverges most from a naive transliteration (float
   refs, stream-slot self-bumps) — rerun [Test_bytecode]'s generators
   with the native engine in the mix. Counts stay small: every distinct
   program is one out-of-process ocamlopt run. *)
let native_differential gen ~name =
  QCheck.Test.make ~name ~count:8
    (QCheck.make ~print:Pretty.program_to_string gen)
    (fun prog ->
      match Lazy.force toolchain with
      | Error _ -> true
      | Ok () ->
          let st = Eval.run prog in
          List.for_all
            (fun domains ->
              let on = Exec.run ~domains ~engine:Exec.Native prog in
              let ob = Exec.run ~domains ~engine:Exec.Bytecode prog in
              Exec.agrees_with_interpreter on st
              && on.Exec.arrays = ob.Exec.arrays
              && on.Exec.scalars = ob.Exec.scalars)
            [ 1; 3 ])

let prop_serial_accum =
  native_differential Test_bytecode.serial_accum_gen
    ~name:"native = bytecode = interp (serial accumulation nests)"

let prop_branchy_varstep =
  native_differential Test_bytecode.branchy_varstep_gen
    ~name:"native = bytecode = interp (branchy variable-step nests)"

(* ---------- trace and metrics shape: native vs bytecode ---------- *)

(* Chunk boundaries, fork events and the scheduler metrics derived from
   them must be engine-invariant: the native runner slots into the same
   per-strip dispatch the bytecode tier uses, so only timestamps may
   differ. *)
let test_trace_shape_identical () =
  require_toolchain ();
  List.iter
    (fun trips ->
      let prog : Ast.program = Test_bytecode.trip_prog ~trips in
      let st = Eval.run prog in
      List.iter
        (fun domains ->
          let run engine =
            let compiled = Compile.compile ~opt_level:2 prog in
            (if engine = Exec.Native then
               match Natgen.prepare compiled with
               | Natgen.Ready _ -> ()
               | Natgen.Unavailable m ->
                   Alcotest.failf "native tier unavailable: %s" m);
            let tracer = Trace.create ~p:domains () in
            let outcome =
              Exec.run_compiled ~domains ~policy:Policy.Static_block ~engine
                ~trace:tracer compiled
            in
            (outcome, Trace.snapshot tracer)
          in
          let ob, tb = run Exec.Bytecode in
          let on, tn = run Exec.Native in
          if not (Exec.agrees_with_interpreter on st) then
            Alcotest.failf "trips=%d domains=%d: native differs from interp"
              trips domains;
          if on.Exec.arrays <> ob.Exec.arrays
             || on.Exec.scalars <> ob.Exec.scalars
          then
            Alcotest.failf "trips=%d domains=%d: native result differs" trips
              domains;
          let shape (tr : Trace.t) =
            ( Array.to_list tr.Trace.chunks
              |> List.map (fun (c : Trace.chunk) ->
                     (c.Trace.epoch, c.Trace.worker, c.Trace.start, c.Trace.len))
              |> List.sort compare,
              Array.to_list tr.Trace.forks
              |> List.map (fun (f : Trace.fork) ->
                     ( f.Trace.f_epoch,
                       Policy.name f.Trace.f_policy,
                       f.Trace.f_n,
                       f.Trace.f_p )) )
          in
          if shape tb <> shape tn then
            Alcotest.failf "trips=%d domains=%d: trace shape differs" trips
              domains;
          let counts (tr : Trace.t) =
            let m = Metrics.of_trace tr in
            ( m.Metrics.total_chunks,
              m.Metrics.total_iters,
              List.map
                (fun (f : Metrics.fork_metrics) ->
                  ( f.Metrics.n,
                    f.Metrics.p,
                    f.Metrics.chunks_dispatched,
                    f.Metrics.iterations ))
                m.Metrics.forks )
          in
          if counts tb <> counts tn then
            Alcotest.failf "trips=%d domains=%d: metrics differ" trips domains)
        [ 1; 2; 4 ])
    [ 1; 4; 5 ]

(* ---------- toolchain-missing fallback ---------- *)

(* With the compiler pinned to a nonexistent path the tier must report
   unavailable (not raise), attach nothing, and the executor must fall
   back to bytecode per plan and still agree with the interpreter. A
   fresh program keeps the in-process artifact table from short-
   circuiting the compiler probe. *)
let test_toolchain_missing_fallback () =
  let prog =
    B.program
      ~arrays:[ B.array "F" [ 5; 7 ] ]
      [
        B.doall "i" (B.int 1) (B.int 5)
          [
            B.doall "j" (B.int 1) (B.int 7)
              [
                B.store "F" [ B.var "i"; B.var "j" ]
                  B.((real 0.125 * var "j") + (var "i" * int 19));
              ];
          ];
      ]
  in
  Unix.putenv "LOOPC_NATIVE_OCAMLOPT" "/nonexistent/loopc-test/ocamlopt";
  Fun.protect
    ~finally:(fun () ->
      (* The empty string reads back as unset for this knob. *)
      Unix.putenv "LOOPC_NATIVE_OCAMLOPT" "")
    (fun () ->
      let compiled = Compile.compile prog in
      (match Natgen.prepare compiled with
      | Natgen.Unavailable m ->
          Alcotest.(check bool)
            "reason names the pinned compiler" true
            (String.length m > 0
            && String.sub m 0 (min 15 (String.length m)) = "native compiler")
      | Natgen.Ready _ ->
          Alcotest.fail "prepare must not succeed without a compiler");
      List.iter
        (fun (p : Compile.plan) ->
          if p.Compile.native <> None then
            Alcotest.fail "no runner may be attached without a compiler")
        (Compile.plans compiled);
      let st = Eval.run prog in
      let o = Exec.run_compiled ~domains:2 ~engine:Exec.Native compiled in
      if not (Exec.agrees_with_interpreter o st) then
        Alcotest.fail "bytecode fallback differs from interpreter")

(* ---------- artifact cache ---------- *)

(* Two compiles of the same program prepared under the same caller key:
   the first builds and persists a [.cmxs], the second must report an
   artifact hit (no rebuild) and still attach working runners. *)
let test_artifact_cache_hit () =
  require_toolchain ();
  let dir = Filename.concat scratch_cache "artifacts" in
  let prog = (Option.get (Kernels.by_name "matmul")) () in
  let key = "test-artifact-cache-matmul" in
  let first = Compile.compile prog in
  (match Natgen.prepare ~key ~dir first with
  | Natgen.Ready { artifact_hit } ->
      Alcotest.(check bool) "first prepare builds" false artifact_hit
  | Natgen.Unavailable m -> Alcotest.failf "first prepare: %s" m);
  let cmxs =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".cmxs")
  in
  Alcotest.(check bool) "a .cmxs artifact was persisted" true (cmxs <> []);
  let second = Compile.compile prog in
  (match Natgen.prepare ~key ~dir second with
  | Natgen.Ready { artifact_hit } ->
      Alcotest.(check bool) "second prepare hits" true artifact_hit
  | Natgen.Unavailable m -> Alcotest.failf "second prepare: %s" m);
  let st = Eval.run prog in
  let o = Exec.run_compiled ~engine:Exec.Native second in
  if not (Exec.agrees_with_interpreter o st) then
    Alcotest.fail "runners from a cached artifact differ from interpreter"

(* ---------- generated source shape ---------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
  in
  nn > 0 && go 0

let test_codegen_shape () =
  let prog = (Option.get (Kernels.by_name "matmul")) () in
  let compiled = Compile.compile ~opt_level:2 prog in
  let src, elig = Natgen.source compiled in
  Alcotest.(check bool)
    "at least one plan is native-eligible" true
    (List.exists Fun.id elig);
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "source contains %S" needle)
        true (contains src needle))
    [
      (* the registration handshake and runner signature *)
      "Natapi.register";
      ": Natapi.runner";
      (* unsafe accesses only — bounds were proven once per fork *)
      "Array.unsafe_get";
      "Array.unsafe_set";
      (* promoted float registers are local refs *)
      "let fr";
      (* serial loops and the strip loop are real loops, not dispatch *)
      "for _k = 0 to len - 1 do";
    ];
  Alcotest.(check bool)
    "no checked array access in generated code" false
    (contains src "Array.get ");
  (* The sanitized build carries shadow instrumentation the generated
     code does not replay: every plan must be ineligible. *)
  let sanitized = Compile.compile ~sanitize:true prog in
  let _, elig_s = Natgen.source sanitized in
  Alcotest.(check bool)
    "sanitized plans are never native-eligible" false
    (List.exists Fun.id elig_s)

(* ---------- profile CLI guard ---------- *)

(* [loopc profile] only profiles the bytecode tier; any other engine is
   a clean one-line error naming the supported set (satellite of the
   native tier: no crash, no silent fallback). *)
let test_profile_engine_cli_error () =
  let loopc = "../bin/loopc.exe" in
  if not (Sys.file_exists loopc) then Alcotest.skip ();
  let err = Filename.temp_file "loopc_profile" ".err" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove err with Sys_error _ -> ())
    (fun () ->
      let code =
        Sys.command
          (Printf.sprintf
             "%s profile --engine native ../examples/programs/matmul.loop \
              >/dev/null 2>%s"
             loopc (Filename.quote err))
      in
      Alcotest.(check int) "exit status" 1 code;
      let lines = In_channel.with_open_text err In_channel.input_lines in
      Alcotest.(check (list string))
        "pinned one-line error"
        [
          "error: loopc profile: unsupported engine \"native\"; supported \
           engines: bytecode";
        ]
        lines)

let suite =
  [
    Alcotest.test_case "codegen shape" `Quick test_codegen_shape;
    Alcotest.test_case "toolchain-missing fallback" `Quick
      test_toolchain_missing_fallback;
    Alcotest.test_case "artifact cache hit" `Quick test_artifact_cache_hit;
    Alcotest.test_case "profile --engine rejects native" `Quick
      test_profile_engine_cli_error;
    Alcotest.test_case "trace and metrics shape vs bytecode" `Slow
      test_trace_shape_identical;
    Alcotest.test_case "kernels (five-way differential)" `Slow
      test_kernels_five_way;
    Alcotest.test_case "examples (five-way differential)" `Slow
      test_examples_five_way;
  ]
  @ [
      Gen.to_alcotest prop_serial_accum;
      Gen.to_alcotest prop_branchy_varstep;
    ]
